package simstar

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/biclique"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rwr"
	"repro/internal/simrank"
	"repro/internal/sparse"
)

// compress mines the biclique compression for a standalone measure call.
// Engine callers hit the cached copy instead.
func compress(g *Graph, cfg config) *biclique.Compressed {
	return biclique.Compress(g, cfg.miner.internal())
}

// Engine answers similarity queries for one evolving graph with
// preprocessing amortised across queries. NewEngine eagerly builds and
// caches, for the base graph:
//
//   - the CSR backward transition matrix Q (SimRank-family measures),
//   - the CSR forward transition matrix W (RWR),
//   - the biclique edge-concentration compression (the memo-* variants).
//
// Standalone Measure calls rebuild those structures on every invocation —
// an O(m) (and for the compression, far worse) cost that a system serving
// heavy query traffic cannot pay per request.
//
// The graph is no longer frozen at construction: ApplyEdits streams edge
// insertions and removals through an internal dyngraph store, and each
// materialised epoch swaps in a fresh immutable state (graph + transition
// matrices, the latter spliced incrementally from the previous epoch rather
// than rebuilt). Queries read the state with one atomic load at entry and
// keep it for their whole run, so updates never stall queries, queries never
// block updates, and a query batch always sees one coherent epoch. The
// result cache keys on the epoch, so a mutation can never serve stale
// scores. An Engine therefore serves concurrent SingleSource / TopK /
// AllPairs / MultiSource / BatchTopK queries and ApplyEdits calls safely
// without external locking.
type Engine struct {
	cfg  config
	opts []Option

	// store is the versioned write path: the append-only delta log and the
	// epoch materialisation policy live there. Engines derived through With
	// share it — they are views of the same evolving graph.
	store *dyngraph.Store

	// state is the read path: the current epoch's immutable preprocessed
	// structures, swapped wholesale on refresh. Shared across With.
	state *atomic.Pointer[engineState]

	// editMu serialises ApplyEdits/Refresh so each materialised delta is
	// spliced onto the state it was computed against. Never held by queries.
	editMu *sync.Mutex

	// cache holds recent single-source score vectors, keyed by (canonical
	// measure, registry generation, parameters, graph epoch, query node).
	// It is shared — not copied — by the engines With returns, since they
	// serve the same graph; the epoch in the key versions entries across
	// mutations, so hits from earlier epochs simply stop matching.
	cache *resultCache
}

// engineState is everything one graph epoch serves queries from. All fields
// are immutable after the state is published (the lazily-built members and
// the workspace pool synchronise internally), so readers share it freely.
type engineState struct {
	g     *Graph
	epoch uint64

	backward *sparse.CSR // Q: row-normalised transposed adjacency
	forward  *sparse.CSR // W: row-normalised adjacency
	comp     *compHolder // edge-concentration compression, possibly lazy
	tr       *transposes // lazily-materialised Qᵀ, Wᵀ for the batch kernels

	// layout is the cache-conscious relabeling of this epoch, nil without
	// WithRelabeling. The natural-order matrices above always exist — the
	// incremental refresh splices them, and all-pairs queries run on them —
	// while the single-source and batch fast paths run on layout's permuted
	// copies.
	layout *layoutState

	// pool recycles the kernel workspaces of the exact single-source fast
	// paths, so steady-state queries allocate nothing beyond their result.
	// Per-state because the workspaces are dimensioned to this epoch's node
	// count.
	pool sync.Pool

	// streamPool recycles the score/exclusion scratch of the TopKStream
	// fast path, so a streamed top-k query materialises no per-query O(n)
	// vector. Separate from pool because the kernels reset their workspace
	// — the scores under selection cannot share it.
	streamPool sync.Pool

	// sweepers recycles the intra-query sweep-parallelism worker pools
	// (sparse.Sweeper) queries borrow under WithParallelSweeps. One sweeper
	// is owned by exactly one query for its whole run — its workers and
	// per-worker arenas are private to that borrow — and returns here with
	// its goroutines still parked, so steady-state parallel queries spawn
	// nothing and allocate nothing.
	sweepers sync.Pool

	// transitionTime is what building (epoch 0) or incrementally refreshing
	// (later epochs) the two transition matrices cost.
	transitionTime time.Duration
}

// newEngineState assembles the shell of an epoch state: the transition
// matrices, compression and layout are filled in by the caller. A non-nil
// observer counts the pool misses — the workspace builds the pool could not
// serve from a recycled arena (every build allocates anyway, so the hook is
// off the zero-alloc path by construction).
func newEngineState(g *Graph, epoch uint64, o *Observer) *engineState {
	st := &engineState{g: g, epoch: epoch, tr: &transposes{}}
	n := g.N()
	st.pool.New = func() any {
		if o != nil {
			o.poolMisses.Inc()
		}
		return sparse.NewWorkspace(n)
	}
	st.streamPool.New = func() any { return &streamScratch{scores: make([]float64, n)} }
	st.sweepers.New = func() any { return sparse.NewSweeper(1) }
	return st
}

// layoutGen numbers every layout ever derived, so result-cache keys can
// version on the layout instance (see cacheKey).
var layoutGen atomic.Uint64

// layoutState is one epoch's node relabeling: the permutation (and its
// inverse) plus the permuted operators the fast-path kernels sweep. It is
// immutable after construction.
type layoutState struct {
	mode RelabelMode
	gen  uint64  // unique per derived layout; 0 means "no relabeling"
	perm []int32 // perm[external] = internal; both translation directions
	// gather through perm (see toInternal/externalize), so the inverse is
	// never materialised here.

	backward *sparse.CSR // P·Q·Pᵀ
	forward  *sparse.CSR // P·W·Pᵀ
	tr       *transposes // lazily-materialised permuted transposes
}

// newLayoutState derives the permutation for mode from g and permutes the
// already-built natural-order transitions. Modes this package does not know
// degrade to no relabeling rather than failing the engine build.
func newLayoutState(mode RelabelMode, g *Graph, backward, forward *sparse.CSR) *layoutState {
	var perm []int32
	switch mode {
	case RelabelDegree:
		perm = graph.DegreeOrder(g)
	case RelabelRCM:
		perm = graph.RCMOrder(g)
	default:
		return nil
	}
	return &layoutState{
		mode:     mode,
		gen:      layoutGen.Add(1),
		perm:     perm,
		backward: sparse.Permute(backward, perm),
		forward:  sparse.Permute(forward, perm),
		tr:       &transposes{},
	}
}

// transposes is a lazily-built pair Qᵀ, Wᵀ for one operator pair.
type transposes struct {
	once      sync.Once
	backwardT *sparse.CSR
	forwardT  *sparse.CSR
}

// of returns the materialised transposes of (backward, forward), building
// them on first use. The O(m) build is paid once per epoch, like the
// transitions themselves, but only by callers of the batch and sieved paths.
func (tr *transposes) of(backward, forward *sparse.CSR) (backwardT, forwardT *sparse.CSR) {
	tr.once.Do(func() {
		tr.backwardT = backward.Transpose()
		tr.forwardT = forward.Transpose()
	})
	return tr.backwardT, tr.forwardT
}

// transposed returns the natural-order transposes.
func (st *engineState) transposed() (backwardT, forwardT *sparse.CSR) {
	return st.tr.of(st.backward, st.forward)
}

// The kernel* accessors return the operators the single-source and batch
// fast paths should sweep: the relabelled copies when a layout exists, the
// natural order otherwise.

func (st *engineState) kernelBackward() *sparse.CSR {
	if st.layout != nil {
		return st.layout.backward
	}
	return st.backward
}

func (st *engineState) kernelForward() *sparse.CSR {
	if st.layout != nil {
		return st.layout.forward
	}
	return st.forward
}

func (st *engineState) kernelTransposed() (backwardT, forwardT *sparse.CSR) {
	if st.layout != nil {
		return st.layout.tr.of(st.layout.backward, st.layout.forward)
	}
	return st.transposed()
}

// layoutKey is the layout generation for result-cache keys: 0 without
// relabeling.
func (st *engineState) layoutKey() uint64 {
	if st.layout == nil {
		return 0
	}
	return st.layout.gen
}

// layoutMode reports the relabeling this state serves, so a refresh can
// re-derive the same mode for the next epoch.
func (st *engineState) layoutMode() RelabelMode {
	if st.layout == nil {
		return RelabelNone
	}
	return st.layout.mode
}

// layoutName names the state's relabeling for traces; empty in natural
// order, so the trace field omits cleanly.
func (st *engineState) layoutName() string {
	switch st.layoutMode() {
	case RelabelDegree:
		return "degree"
	case RelabelRCM:
		return "rcm"
	}
	return ""
}

// toInternal translates an external (graph) node id into the kernel layout.
func (st *engineState) toInternal(q int) int {
	if st.layout == nil {
		return q
	}
	return int(st.layout.perm[q])
}

// externalize rearranges a kernel-layout score vector into external id
// order in place, staging through one workspace buffer. A no-op without a
// layout.
func (st *engineState) externalize(scores []float64, ws *sparse.Workspace) {
	if st.layout == nil {
		return
	}
	ws.Reset()
	tmp := ws.Raw()
	copy(tmp, scores)
	perm := st.layout.perm
	for e := range scores {
		scores[e] = tmp[perm[e]]
	}
}

// getWS borrows a kernel workspace from the state's pool; putWS returns it.
func (st *engineState) getWS() *sparse.Workspace   { return st.pool.Get().(*sparse.Workspace) }
func (st *engineState) putWS(ws *sparse.Workspace) { st.pool.Put(ws) }

// getSweeper borrows a sweep-parallelism worker pool; putSweeper returns it.
func (st *engineState) getSweeper() *sparse.Sweeper   { return st.sweepers.Get().(*sparse.Sweeper) }
func (st *engineState) putSweeper(sw *sparse.Sweeper) { st.sweepers.Put(sw) }

// sweeperFor borrows a sweeper configured to cfg's WithParallelSweeps
// setting, or nil when the query should run its sweeps serially (the
// default). A non-nil return is owned by the calling query until it is
// handed back with putSweeper — the single-borrower rule the kernels'
// Options document.
func (st *engineState) sweeperFor(cfg config) *sparse.Sweeper {
	w := cfg.sweepWorkers()
	if w <= 1 {
		return nil
	}
	sw := st.getSweeper()
	sw.Configure(w)
	//simstar:lint-ignore poolescape configuring accessor: callers own the loan and defer putSweeper on every non-nil return
	return sw
}

// compHolder defers the biclique mining of a refreshed epoch until a memo
// query needs it: mining is the expensive part of preprocessing, and the
// update path must not pay it inline. The mined result is published through
// an atomic pointer so Stats can peek without forcing the build; until this
// epoch has mined, peek falls back to the most recently mined epoch's
// result (prev), so compression stats never flap to zero across mutations.
type compHolder struct {
	g     *Graph
	miner biclique.Options
	prev  *compResult // last-mined result of an earlier epoch, or nil
	once  sync.Once
	res   atomic.Pointer[compResult]
}

type compResult struct {
	c   *biclique.Compressed
	dur time.Duration
}

func newCompHolder(g *Graph, miner biclique.Options, prev *compResult) *compHolder {
	return &compHolder{g: g, miner: miner, prev: prev}
}

// get returns this epoch's compression, mining it on first use.
func (h *compHolder) get() *biclique.Compressed {
	h.once.Do(func() {
		t0 := time.Now()
		c := biclique.Compress(h.g, h.miner)
		h.res.Store(&compResult{c: c, dur: time.Since(t0)})
	})
	return h.res.Load().c
}

// peek returns the most recently mined compression — this epoch's if it has
// been built, an earlier epoch's otherwise — without forcing a build.
func (h *compHolder) peek() *compResult {
	if cr := h.res.Load(); cr != nil {
		return cr
	}
	return h.prev
}

// EngineStats reports the served graph and what preprocessing cost. For an
// epoch produced by ApplyEdits, TransitionTime is the incremental refresh
// cost and the compression fields describe the most recent epoch whose
// compression has actually been mined (mining is lazy after mutations:
// the first memo-variant query of an epoch pays it).
type EngineStats struct {
	// Nodes and Edges are the size of the served graph at the current epoch.
	Nodes, Edges int
	// Epoch is the graph version being served; 0 until the first
	// materialised mutation (or the warm-start epoch under WithBaseEpoch).
	Epoch uint64
	// PendingEdits counts edits applied but not yet materialised into a
	// snapshot (only non-zero under WithEpochInterval > 1).
	PendingEdits int
	// CompressedEdges is m̃, the edge count of the compressed bigraph.
	CompressedEdges int
	// ConcentrationNodes is the number of mined bicliques.
	ConcentrationNodes int
	// CompressionRatio is (1 − m̃/m)·100%.
	CompressionRatio float64
	// TransitionTime covers building (or incrementally refreshing) both CSR
	// transition matrices for the current epoch.
	TransitionTime time.Duration
	// CompressionTime covers the biclique mining, when it has run.
	CompressionTime time.Duration
}

// NewEngine builds the per-graph caches and returns a query engine. The
// options become the engine's defaults for every query it serves. The base
// epoch's compression is mined eagerly, so the engine is fully warmed for
// every measure before the first query. Under WithRelabeling the
// cache-conscious permutation and the permuted operators are also derived
// here, as part of the amortised preprocessing.
func NewEngine(g *Graph, opts ...Option) *Engine {
	e := &Engine{cfg: buildConfig(opts), opts: opts}
	e.cache = newResultCache(e.cfg.cacheSize)
	e.editMu = &sync.Mutex{}
	e.state = &atomic.Pointer[engineState]{}
	e.store = dyngraph.New(g,
		dyngraph.WithInterval(e.cfg.epochInterval),
		dyngraph.WithBaseEpoch(e.cfg.baseEpoch))
	st := newEngineState(g, e.cfg.baseEpoch, e.cfg.observer)
	t0 := time.Now()
	st.backward = sparse.BackwardTransition(g)
	st.forward = sparse.ForwardTransition(g)
	st.layout = newLayoutState(e.cfg.relabel, g, st.backward, st.forward)
	st.transitionTime = time.Since(t0)
	st.comp = newCompHolder(g, e.cfg.miner.internal(), nil)
	st.comp.get()
	e.state.Store(st)
	return e
}

// load returns the current epoch's state. Queries call it once at entry and
// carry the state through, so one request never straddles two epochs.
func (e *Engine) load() *engineState { return e.state.Load() }

// Graph returns the graph of the epoch the engine currently serves.
func (e *Engine) Graph() *Graph { return e.load().g }

// With returns an engine that shares the receiver's graph, store and cached
// structures but applies opts on top of the receiver's options —
// per-request parameter overrides (a different K, a deadline-driven ε)
// without repeating the preprocessing. The receiver is not modified; edits
// applied through either engine are visible to both. Structure-shaping
// options are fixed at construction: a WithMiner passed here does not
// re-mine the shared compression, and a WithEpochInterval here does not
// re-tune the shared store (build a new Engine for those).
func (e *Engine) With(opts ...Option) *Engine {
	ne := *e
	ne.opts = append(append([]Option(nil), e.opts...), opts...)
	ne.cfg = buildConfig(ne.opts)
	return &ne
}

// Stats returns the preprocessing summary for the current epoch.
func (e *Engine) Stats() EngineStats {
	st := e.load()
	s := EngineStats{
		Nodes:          st.g.N(),
		Edges:          st.g.M(),
		Epoch:          st.epoch,
		PendingEdits:   e.store.Pending(),
		TransitionTime: st.transitionTime,
	}
	if cr := st.comp.peek(); cr != nil {
		s.CompressedEdges = cr.c.MCompressed
		s.ConcentrationNodes = cr.c.NumConcentration()
		s.CompressionRatio = cr.c.CompressionRatio()
		s.CompressionTime = cr.dur
	}
	return s
}

// CacheStats returns the current state and lifetime counters of the
// single-source result cache. Engines derived through With share the
// receiver's cache and therefore report the same stats.
func (e *Engine) CacheStats() CacheStats { return e.cache.snapshot() }

// PurgeCache drops every cached single-source result and resets the cache
// counters. Queries in flight are unaffected. There is normally no reason to
// call this — the cache can never serve a stale answer for this engine's
// graph, because every mutation epoch and registry change versions the keys
// — but a server may want it to release memory (entries from dead epochs
// age out through the LRU rather than instantly) or to start a measurement
// epoch clean.
func (e *Engine) PurgeCache() { e.cache.purge() }

// fastPathKernel reports whether a canonical built-in name has an engine
// single-source fast path over the cached transition matrices (the measures
// with native single-source forms; the memo variants share the iterative
// path — the results are identical).
func fastPathKernel(builtin string) bool {
	switch builtin {
	case MeasureGeometric, MeasureGeometricMemo,
		MeasureExponential, MeasureExponentialMemo, MeasureRWR:
		return true
	}
	return false
}

// SingleSource returns the scores of query node q against every node under
// the named measure. It is served from the cached transition structures
// where the measure supports it, and from the result cache when the same
// (measure, parameters, node) was answered recently on the same graph
// epoch. The returned slice is the caller's to keep and mutate. Under
// WithTolerance the scores are sieved-approximate; use
// SingleSourceCertified to also receive the MaxError certificate.
func (e *Engine) SingleSource(ctx context.Context, measureName string, q int) ([]float64, error) {
	scores, _, _, err := e.singleSource(ctx, e.load(), measureName, q)
	return scores, err
}

// SingleSourceCertified is SingleSource plus the result's MaxError
// certificate: a machine-checkable bound on the element-wise deviation of
// the returned scores from the exact kernels at the same parameters. It is
// 0 for exact queries (the default) and at most the configured tolerance
// for sieved-approximate ones.
func (e *Engine) SingleSourceCertified(ctx context.Context, measureName string, q int) ([]float64, float64, error) {
	scores, maxErr, _, err := e.singleSource(ctx, e.load(), measureName, q)
	return scores, maxErr, err
}

// cacheLookup probes the result cache for key, then — for an approximate
// request — for the exact (tolerance-zero) variant of the same key, since
// an exact result satisfies every tolerance with a zero certificate. A
// donor hit counts one miss (the approximate key) and one hit in the cache
// stats; the engine observer, when present, counts the probe's final
// outcome once.
func (e *Engine) cacheLookup(key cacheKey) ([]float64, float64, bool) {
	scores, maxErr, ok := e.cache.get(key)
	if !ok && key.params.tolerance >= MinTolerance {
		exact := key
		exact.params.tolerance = 0
		if donor, _, donorOK := e.cache.get(exact); donorOK {
			scores, maxErr, ok = donor, 0, true
		}
	}
	if o := e.cfg.observer; o != nil {
		if ok {
			o.cacheHits.Inc()
		} else {
			o.cacheMisses.Inc()
		}
	}
	if !ok {
		return nil, 0, false
	}
	return scores, maxErr, true
}

// singleSource is SingleSourceCertified against one pinned state, plus a
// flag reporting whether the result came out of the result cache —
// surfaced through batch Results and simserve responses.
func (e *Engine) singleSource(ctx context.Context, st *engineState, measureName string, q int) ([]float64, float64, bool, error) {
	return e.singleSourceObs(ctx, st, measureName, q, true, nil)
}

// singleSourceObs is the instrumented core of the allocating single-source
// read path. count=false suppresses the per-query counter for callers that
// count under their own kind (batch fan-out, stream slow path); tr, when
// non-nil, receives the staged trace — the plan/cache/kernel spans, the
// cache outcome and the kernel detail — with the caller owning the final
// Finish stamp.
func (e *Engine) singleSourceObs(ctx context.Context, st *engineState, measureName string, q int, count bool, tr *obs.Trace) ([]float64, float64, bool, error) {
	o := e.cfg.observer
	if count && o != nil {
		o.qSingle.Inc()
	}
	ctx, cancel := e.cfg.deadlineCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	t0 := time.Now()
	if err := st.checkQuery(ctx, q); err != nil {
		o.observeCancel(ctx, err)
		return nil, 0, false, err
	}
	key := cacheKey{
		measure: canonical(measureName),
		gen:     registryGeneration(),
		epoch:   st.epoch,
		layout:  st.layoutKey(),
		params:  e.cfg.cacheParams(),
		node:    q,
	}
	if tr != nil {
		tr.Measure = key.measure
		tr.Node = q
		tr.Epoch = st.epoch
		tr.Layout = st.layoutName()
		tr.AddSpan("plan", time.Since(t0))
		t0 = time.Now()
	}
	scores, maxErr, hit := e.cacheLookup(key)
	if tr != nil {
		tr.AddSpan("cache", time.Since(t0))
	}
	if hit {
		if tr != nil {
			tr.Cached = true
			tr.MaxError = maxErr
			tr.Plan = "cache"
		}
		return scores, maxErr, true, nil
	}
	var kt *obs.KernelTrace
	switch {
	case tr != nil:
		kt = &tr.Kernel
	case o != nil:
		// Observer-only: this path allocates its result vector anyway, so a
		// transient trace to aggregate from is free in comparison.
		kt = new(obs.KernelTrace)
	}
	t0 = time.Now()
	scores, maxErr, err := e.safeComputeSingleSource(ctx, st, measureName, q, kt)
	kernelTime := time.Since(t0)
	if err != nil {
		o.observeCancel(ctx, err)
		return nil, 0, false, err
	}
	if o != nil {
		o.recordKernel(kt, kernelTime)
	}
	if tr != nil {
		tr.AddSpan("kernel", kernelTime)
		tr.MaxError = maxErr
		if e.cfg.tolerance >= MinTolerance && fastPathKernel(builtinFor(measureName)) {
			tr.Plan = "sieved"
		} else {
			tr.Plan = "exact"
		}
	}
	e.cache.put(key, scores, maxErr)
	return scores, maxErr, false, nil
}

// computeSingleSource is the uncached single-source path: the engine fast
// paths over the cached (and, under WithRelabeling, permuted) transition
// matrices for the built-in measures — sieved-approximate under an
// effective WithTolerance, exact otherwise — and the measure's own
// implementation for everything else. The second return is the MaxError
// certificate (0 on every exact path). Fast-path results come back in
// external id order regardless of layout. kt, when non-nil, receives the
// kernel-level detail of the fast paths (non-built-in measures report
// nothing — their kernels are opaque to the engine).
func (e *Engine) computeSingleSource(ctx context.Context, st *engineState, measureName string, q int, kt *obs.KernelTrace) ([]float64, float64, error) {
	builtin := builtinFor(measureName)
	if !fastPathKernel(builtin) {
		m, err := Lookup(measureName, e.opts...)
		if err != nil {
			return nil, 0, err
		}
		s, err := m.SingleSource(ctx, st.g, q)
		return s, 0, err
	}
	tol := e.cfg.tolerance
	qi := st.toInternal(q)
	ws := st.getWS()
	defer st.putWS(ws)
	sw := st.sweeperFor(e.cfg)
	if sw != nil {
		defer st.putSweeper(sw)
	}
	if tol >= MinTolerance {
		var (
			scores []float64
			maxErr float64
			err    error
		)
		switch builtin {
		case MeasureGeometric, MeasureGeometricMemo:
			backwardT, _ := st.kernelTransposed()
			opt := e.cfg.coreOptions()
			opt.Trace = kt
			opt.Parallel = sw
			scores, maxErr, err = core.ApproxSingleSourceGeometricFromTransition(ctx, st.kernelBackward(), backwardT, qi, tol, opt)
		case MeasureExponential, MeasureExponentialMemo:
			backwardT, _ := st.kernelTransposed()
			opt := e.cfg.coreOptions()
			opt.Trace = kt
			opt.Parallel = sw
			scores, maxErr, err = core.ApproxSingleSourceExponentialFromTransition(ctx, st.kernelBackward(), backwardT, qi, tol, opt)
		case MeasureRWR:
			opt := e.cfg.rwrOptions()
			opt.Trace = kt
			opt.Parallel = sw
			scores, maxErr, err = rwr.ApproxSingleSourceFromTransition(ctx, st.kernelForward(), qi, tol, opt)
		}
		if err != nil {
			return nil, 0, err
		}
		st.externalize(scores, ws)
		return scores, maxErr, nil
	}
	dst := make([]float64, st.g.N())
	grew := ws.Grows()
	if err := e.exactSingleSourceInto(ctx, st, builtin, qi, ws, sw, dst, kt); err != nil {
		return nil, 0, err
	}
	if kt != nil {
		kt.WorkspaceGrew = ws.Grows() - grew
	}
	st.externalize(dst, ws)
	return dst, 0, nil
}

// exactSingleSourceInto runs one exact fast-path kernel in the state's
// layout, writing kernel-order scores into dst from the pooled workspace —
// the allocation-free core of the serving path. qi is a kernel-layout node
// id; callers translate the result back with externalize. kt (nilable)
// threads kernel-level tracing through the options structs — a plain field
// copy here, with the kernels guarding their own hook sites. sw (nilable)
// likewise threads the borrowed sweep-parallelism pool, plus the
// materialised transpose the backward sweeps gather over; the transpose
// build is a once-per-epoch cost paid only by queries that parallelise.
//
//simstar:noalloc
func (e *Engine) exactSingleSourceInto(ctx context.Context, st *engineState, builtin string, qi int, ws *sparse.Workspace, sw *sparse.Sweeper, dst []float64, kt *obs.KernelTrace) error {
	switch builtin {
	case MeasureGeometric, MeasureGeometricMemo:
		opt := e.cfg.coreOptions()
		opt.Trace = kt
		if sw != nil {
			opt.Parallel = sw
			opt.Transposed, _ = st.kernelTransposed()
		}
		return core.SingleSourceGeometricWS(ctx, st.kernelBackward(), qi, opt, ws, dst)
	case MeasureExponential, MeasureExponentialMemo:
		opt := e.cfg.coreOptions()
		opt.Trace = kt
		if sw != nil {
			opt.Parallel = sw
			opt.Transposed, _ = st.kernelTransposed()
		}
		return core.SingleSourceExponentialWS(ctx, st.kernelBackward(), qi, opt, ws, dst)
	case MeasureRWR:
		opt := e.cfg.rwrOptions()
		opt.Trace = kt
		if sw != nil {
			opt.Parallel = sw
			_, opt.Transposed = st.kernelTransposed()
		}
		return rwr.SingleSourceWS(ctx, st.kernelForward(), qi, opt, ws, dst)
	}
	panic("simstar: unreachable fast-path kernel")
}

// SingleSourceInto is the allocation-free variant of SingleSource for
// steady-state serving loops: the scores of query node q under the named
// measure are written into dst, which is grown only if its capacity is
// below the node count, and the filled slice is returned. The exact
// fast-path measures (geometric and exponential SimRank*, their memo
// variants, and RWR) run on the engine's pooled kernel workspaces and
// bypass the result cache entirely — a warmed engine performs zero heap
// allocations per call. Other measures, and engines configured with
// WithTolerance, fall back to the allocating SingleSource path (result
// cache included) and copy into dst.
//
//simstar:noalloc
func (e *Engine) SingleSourceInto(ctx context.Context, measureName string, q int, dst []float64) (_ []float64, err error) {
	st := e.load()
	ctx, cancel := e.cfg.deadlineCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	// Direct method defer — no closure — so panic isolation fits the
	// zero-alloc contract; a recovered kernel panic surfaces as an
	// ErrKernelPanic-wrapped err with a nil slice.
	defer e.recoverKernel(&err)
	if err := st.checkQuery(ctx, q); err != nil {
		e.cfg.observer.observeCancel(ctx, err)
		return nil, err
	}
	n := st.g.N()
	if cap(dst) < n {
		//simstar:lint-ignore noalloc documented grow-on-first-use of an undersized dst
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	builtin := builtinFor(measureName)
	if fastPathKernel(builtin) && e.cfg.tolerance < MinTolerance {
		o := e.cfg.observer
		ws := st.getWS()
		defer st.putWS(ws)
		sw := st.sweeperFor(e.cfg)
		if sw != nil {
			defer st.putSweeper(sw)
		}
		// With an observer on, the kernel trace lives inside the pooled
		// workspace — &ws.Trace is a borrow, not an allocation — so the
		// zero-alloc contract holds with observation on or off.
		var kt *obs.KernelTrace
		if o != nil {
			o.qSingle.Inc()
			kt = &ws.Trace
			kt.Reset()
		}
		start := time.Now()
		e.cfg.fireFault(FaultPointKernel)
		if err := e.exactSingleSourceInto(ctx, st, builtin, st.toInternal(q), ws, sw, dst, kt); err != nil {
			e.cfg.observer.observeCancel(ctx, err)
			return nil, err
		}
		st.externalize(dst, ws)
		if o != nil {
			o.recordKernel(kt, time.Since(start))
		}
		return dst, nil
	}
	scores, _, _, err := e.singleSource(ctx, st, measureName, q)
	if err != nil {
		return nil, err
	}
	copy(dst, scores)
	return dst, nil
}

// TopK returns the k nodes most similar to q under the named measure,
// excluding q itself and any nodes in exclude (e.g. existing neighbours
// when recommending new links). Ties break by node id. The boundary cases
// follow the package-level TopK: k <= 0 yields an empty result, k larger
// than the candidate count yields every candidate. The underlying score
// vector goes through the result cache, so a TopK after a SingleSource of
// the same (measure, parameters, node) is a cache hit.
func (e *Engine) TopK(ctx context.Context, measureName string, q, k int, exclude ...int) ([]Ranked, error) {
	scores, err := e.SingleSource(ctx, measureName, q)
	if err != nil {
		return nil, err
	}
	return TopK(scores, k, append([]int{q}, exclude...)...), nil
}

// AllPairs computes the full similarity matrix under the named measure,
// reusing the cached transition matrices and compression of the current
// epoch. All-pairs runs always sweep the natural-order matrices — the n×n
// result is produced directly in graph ids, so WithRelabeling neither helps
// nor requires translation here.
func (e *Engine) AllPairs(ctx context.Context, measureName string) (_ *Scores, err error) {
	ctx, cancel := e.cfg.deadlineCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	defer e.recoverKernel(&err)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st := e.load()
	builtin := builtinFor(measureName)
	opt := e.cfg.coreOptions()
	switch builtin {
	case MeasureGeometric:
		m, err := core.GeometricFromTransition(ctx, st.backward, opt)
		return wrapDense(m, err)
	case MeasureGeometricMemo:
		m, err := core.GeometricFromCompressed(ctx, st.comp.get(), opt)
		return wrapDense(m, err)
	case MeasureExponential:
		m, err := core.ExponentialFromTransition(ctx, st.backward, opt)
		return wrapDense(m, err)
	case MeasureExponentialMemo:
		m, err := core.ExponentialFromCompressed(ctx, st.comp.get(), opt)
		return wrapDense(m, err)
	case MeasureSimRankMatrix:
		m, err := simrank.MatrixFormFromTransition(ctx, st.backward, e.cfg.simrankOptions())
		return wrapDense(m, err)
	case MeasureRWR:
		m, err := rwr.AllPairsFromTransition(ctx, st.forward, e.cfg.rwrOptions())
		return wrapDense(m, err)
	}
	m, err := Lookup(measureName, e.opts...)
	if err != nil {
		return nil, err
	}
	return m.AllPairs(ctx, st.g)
}

func wrapDense(m *dense.Matrix, err error) (*Scores, error) {
	if err != nil {
		return nil, err
	}
	return denseScores(m), nil
}

func (st *engineState) checkQuery(ctx context.Context, q int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if q < 0 || q >= st.g.N() {
		return fmt.Errorf("simstar: query node %d out of range [0, %d)", q, st.g.N())
	}
	return nil
}
