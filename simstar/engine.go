package simstar

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/biclique"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/rwr"
	"repro/internal/simrank"
	"repro/internal/sparse"
)

// compress mines the biclique compression for a standalone measure call.
// Engine callers hit the cached copy instead.
func compress(g *Graph, cfg config) *biclique.Compressed {
	return biclique.Compress(g, cfg.miner.internal())
}

// Engine answers similarity queries for one graph with preprocessing done
// once at construction instead of per call. NewEngine eagerly builds and
// caches:
//
//   - the CSR backward transition matrix Q (SimRank-family measures),
//   - the CSR forward transition matrix W (RWR),
//   - the biclique edge-concentration compression (the memo-* variants).
//
// Standalone Measure calls rebuild those structures on every invocation —
// an O(m) (and for the compression, far worse) cost that a system serving
// heavy query traffic cannot pay per request. The preprocessed structures
// are immutable after construction; the only mutable state is the
// internally-synchronised single-source result cache, so an Engine serves
// concurrent SingleSource / TopK / AllPairs / MultiSource / BatchTopK
// queries safely without external locking.
type Engine struct {
	g    *Graph
	cfg  config
	opts []Option

	backward *sparse.CSR          // Q: row-normalised transposed adjacency
	forward  *sparse.CSR          // W: row-normalised adjacency
	comp     *biclique.Compressed // edge-concentration compression

	// cache holds recent single-source score vectors, keyed by (canonical
	// measure, registry generation, parameters, query node). It is the one
	// mutable structure the engine owns; it is shared — not copied — by the
	// engines With returns, since they serve the same graph. A graph change
	// means a new Engine and therefore a fresh, empty cache.
	cache *resultCache

	// tr holds the lazily-materialised transposes of the transition
	// matrices, built on the first batch query (the blocked kernels want
	// gather-form sweeps in both directions). Shared by pointer so engines
	// derived through With reuse it and the sync.Once is never copied.
	tr *transposes

	stats EngineStats
}

// transposes is the Engine's lazily-built pair Qᵀ, Wᵀ.
type transposes struct {
	once      sync.Once
	backwardT *sparse.CSR
	forwardT  *sparse.CSR
}

// transposed returns the materialised transposes, building them on first
// use. The O(m) build is paid once per engine graph, like the transitions
// themselves, but only by callers of the batch paths.
func (e *Engine) transposed() (backwardT, forwardT *sparse.CSR) {
	e.tr.once.Do(func() {
		e.tr.backwardT = e.backward.Transpose()
		e.tr.forwardT = e.forward.Transpose()
	})
	return e.tr.backwardT, e.tr.forwardT
}

// EngineStats reports what NewEngine built and how long it took.
type EngineStats struct {
	// Nodes and Edges are the size of the served graph.
	Nodes, Edges int
	// CompressedEdges is m̃, the edge count of the compressed bigraph.
	CompressedEdges int
	// ConcentrationNodes is the number of mined bicliques.
	ConcentrationNodes int
	// CompressionRatio is (1 − m̃/m)·100%.
	CompressionRatio float64
	// TransitionTime covers building both CSR transition matrices.
	TransitionTime time.Duration
	// CompressionTime covers the biclique mining.
	CompressionTime time.Duration
}

// NewEngine builds the per-graph caches and returns a query engine. The
// options become the engine's defaults for every query it serves.
func NewEngine(g *Graph, opts ...Option) *Engine {
	e := &Engine{g: g, cfg: buildConfig(opts), opts: opts}
	e.cache = newResultCache(e.cfg.cacheSize)
	e.tr = &transposes{}
	t0 := time.Now()
	e.backward = sparse.BackwardTransition(g)
	e.forward = sparse.ForwardTransition(g)
	e.stats.TransitionTime = time.Since(t0)
	t0 = time.Now()
	e.comp = biclique.Compress(g, e.cfg.miner.internal())
	e.stats.CompressionTime = time.Since(t0)
	e.stats.Nodes = g.N()
	e.stats.Edges = g.M()
	e.stats.CompressedEdges = e.comp.MCompressed
	e.stats.ConcentrationNodes = e.comp.NumConcentration()
	e.stats.CompressionRatio = e.comp.CompressionRatio()
	return e
}

// Graph returns the graph the engine serves.
func (e *Engine) Graph() *Graph { return e.g }

// With returns an engine that shares the receiver's graph and cached
// structures but applies opts on top of the receiver's options —
// per-request parameter overrides (a different K, a deadline-driven ε)
// without repeating the preprocessing. The receiver is not modified.
// Structure-shaping options are fixed at construction: a WithMiner passed
// here does not re-mine the shared compression (build a new Engine for
// that).
func (e *Engine) With(opts ...Option) *Engine {
	ne := *e
	ne.opts = append(append([]Option(nil), e.opts...), opts...)
	ne.cfg = buildConfig(ne.opts)
	return &ne
}

// Stats returns the preprocessing summary.
func (e *Engine) Stats() EngineStats { return e.stats }

// CacheStats returns the current state and lifetime counters of the
// single-source result cache. Engines derived through With share the
// receiver's cache and therefore report the same stats.
func (e *Engine) CacheStats() CacheStats { return e.cache.snapshot() }

// PurgeCache drops every cached single-source result and resets the cache
// counters. Queries in flight are unaffected. There is normally no reason to
// call this — the cache can never serve a stale answer for this engine's
// graph, because the graph is immutable and re-registered measure names are
// versioned out by the registry generation — but a server may want it to
// release memory or to start a measurement epoch clean.
func (e *Engine) PurgeCache() { e.cache.purge() }

// builtinName resolves measureName through the registry and reports the
// canonical built-in name it denotes, or "" when the name is bound to a
// user-registered implementation — a re-registered built-in name must get
// the override, not the engine's fast path.
func (e *Engine) builtinName(measureName string) (string, Measure, error) {
	m, err := Lookup(measureName, e.opts...)
	if err != nil {
		return "", nil, err
	}
	if bm, ok := m.(*measure); ok {
		return bm.name, m, nil
	}
	return "", m, nil
}

// SingleSource returns the scores of query node q against every node under
// the named measure. It is served from the cached transition structures
// where the measure supports it, and from the result cache when the same
// (measure, parameters, node) was answered recently. The returned slice is
// the caller's to keep and mutate.
func (e *Engine) SingleSource(ctx context.Context, measureName string, q int) ([]float64, error) {
	scores, _, err := e.singleSource(ctx, measureName, q)
	return scores, err
}

// singleSource is SingleSource plus a flag reporting whether the result came
// out of the result cache — surfaced through batch Results and simserve
// responses.
func (e *Engine) singleSource(ctx context.Context, measureName string, q int) ([]float64, bool, error) {
	if err := e.checkQuery(ctx, q); err != nil {
		return nil, false, err
	}
	key := cacheKey{
		measure: canonical(measureName),
		gen:     registryGeneration(),
		params:  e.cfg.cacheParams(),
		node:    q,
	}
	if scores, ok := e.cache.get(key); ok {
		return scores, true, nil
	}
	scores, err := e.computeSingleSource(ctx, measureName, q)
	if err != nil {
		return nil, false, err
	}
	e.cache.put(key, scores)
	return scores, false, nil
}

// computeSingleSource is the uncached single-source path: the engine fast
// paths over the cached transition matrices for the built-in measures, the
// measure's own implementation otherwise.
func (e *Engine) computeSingleSource(ctx context.Context, measureName string, q int) ([]float64, error) {
	builtin, m, err := e.builtinName(measureName)
	if err != nil {
		return nil, err
	}
	switch builtin {
	// Single-source SimRank* factors through walk vectors and never
	// materialises the matrix, so the memo variants share the iterative
	// fast path (the results are identical).
	case MeasureGeometric, MeasureGeometricMemo:
		return core.SingleSourceGeometricFromTransition(ctx, e.backward, q, e.cfg.coreOptions())
	case MeasureExponential, MeasureExponentialMemo:
		return core.SingleSourceExponentialFromTransition(ctx, e.backward, q, e.cfg.coreOptions())
	case MeasureRWR:
		return rwr.SingleSourceFromTransition(ctx, e.forward, q, e.cfg.rwrOptions())
	}
	return m.SingleSource(ctx, e.g, q)
}

// TopK returns the k nodes most similar to q under the named measure,
// excluding q itself and any nodes in exclude (e.g. existing neighbours
// when recommending new links). Ties break by node id. The boundary cases
// follow the package-level TopK: k <= 0 yields an empty result, k larger
// than the candidate count yields every candidate. The underlying score
// vector goes through the result cache, so a TopK after a SingleSource of
// the same (measure, parameters, node) is a cache hit.
func (e *Engine) TopK(ctx context.Context, measureName string, q, k int, exclude ...int) ([]Ranked, error) {
	scores, err := e.SingleSource(ctx, measureName, q)
	if err != nil {
		return nil, err
	}
	return TopK(scores, k, append([]int{q}, exclude...)...), nil
}

// AllPairs computes the full similarity matrix under the named measure,
// reusing the cached transition matrices and compression.
func (e *Engine) AllPairs(ctx context.Context, measureName string) (*Scores, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	builtin, m, err := e.builtinName(measureName)
	if err != nil {
		return nil, err
	}
	opt := e.cfg.coreOptions()
	switch builtin {
	case MeasureGeometric:
		m, err := core.GeometricFromTransition(ctx, e.backward, opt)
		return wrapDense(m, err)
	case MeasureGeometricMemo:
		m, err := core.GeometricFromCompressed(ctx, e.comp, opt)
		return wrapDense(m, err)
	case MeasureExponential:
		m, err := core.ExponentialFromTransition(ctx, e.backward, opt)
		return wrapDense(m, err)
	case MeasureExponentialMemo:
		m, err := core.ExponentialFromCompressed(ctx, e.comp, opt)
		return wrapDense(m, err)
	case MeasureSimRankMatrix:
		m, err := simrank.MatrixFormFromTransition(ctx, e.backward, e.cfg.simrankOptions())
		return wrapDense(m, err)
	case MeasureRWR:
		m, err := rwr.AllPairsFromTransition(ctx, e.forward, e.cfg.rwrOptions())
		return wrapDense(m, err)
	}
	return m.AllPairs(ctx, e.g)
}

func wrapDense(m *dense.Matrix, err error) (*Scores, error) {
	if err != nil {
		return nil, err
	}
	return denseScores(m), nil
}

func (e *Engine) checkQuery(ctx context.Context, q int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if q < 0 || q >= e.g.N() {
		return fmt.Errorf("simstar: query node %d out of range [0, %d)", q, e.g.N())
	}
	return nil
}
