package simstar

import (
	"context"
	"fmt"
	"time"

	"repro/internal/biclique"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/rwr"
	"repro/internal/simrank"
	"repro/internal/sparse"
)

// compress mines the biclique compression for a standalone measure call.
// Engine callers hit the cached copy instead.
func compress(g *Graph, cfg config) *biclique.Compressed {
	return biclique.Compress(g, cfg.miner.internal())
}

// Engine answers similarity queries for one graph with preprocessing done
// once at construction instead of per call. NewEngine eagerly builds and
// caches:
//
//   - the CSR backward transition matrix Q (SimRank-family measures),
//   - the CSR forward transition matrix W (RWR),
//   - the biclique edge-concentration compression (the memo-* variants).
//
// Standalone Measure calls rebuild those structures on every invocation —
// an O(m) (and for the compression, far worse) cost that a system serving
// heavy query traffic cannot pay per request. All cached structures are
// immutable after construction, so an Engine serves concurrent
// SingleSource / TopK / AllPairs queries without locking.
type Engine struct {
	g    *Graph
	cfg  config
	opts []Option

	backward *sparse.CSR          // Q: row-normalised transposed adjacency
	forward  *sparse.CSR          // W: row-normalised adjacency
	comp     *biclique.Compressed // edge-concentration compression

	stats EngineStats
}

// EngineStats reports what NewEngine built and how long it took.
type EngineStats struct {
	Nodes, Edges int
	// CompressedEdges is m̃, the edge count of the compressed bigraph.
	CompressedEdges int
	// ConcentrationNodes is the number of mined bicliques.
	ConcentrationNodes int
	// CompressionRatio is (1 − m̃/m)·100%.
	CompressionRatio float64
	// TransitionTime covers building both CSR transition matrices;
	// CompressionTime covers the biclique mining.
	TransitionTime  time.Duration
	CompressionTime time.Duration
}

// NewEngine builds the per-graph caches and returns a query engine. The
// options become the engine's defaults for every query it serves.
func NewEngine(g *Graph, opts ...Option) *Engine {
	e := &Engine{g: g, cfg: buildConfig(opts), opts: opts}
	t0 := time.Now()
	e.backward = sparse.BackwardTransition(g)
	e.forward = sparse.ForwardTransition(g)
	e.stats.TransitionTime = time.Since(t0)
	t0 = time.Now()
	e.comp = biclique.Compress(g, e.cfg.miner.internal())
	e.stats.CompressionTime = time.Since(t0)
	e.stats.Nodes = g.N()
	e.stats.Edges = g.M()
	e.stats.CompressedEdges = e.comp.MCompressed
	e.stats.ConcentrationNodes = e.comp.NumConcentration()
	e.stats.CompressionRatio = e.comp.CompressionRatio()
	return e
}

// Graph returns the graph the engine serves.
func (e *Engine) Graph() *Graph { return e.g }

// With returns an engine that shares the receiver's graph and cached
// structures but applies opts on top of the receiver's options —
// per-request parameter overrides (a different K, a deadline-driven ε)
// without repeating the preprocessing. The receiver is not modified.
// Structure-shaping options are fixed at construction: a WithMiner passed
// here does not re-mine the shared compression (build a new Engine for
// that).
func (e *Engine) With(opts ...Option) *Engine {
	ne := *e
	ne.opts = append(append([]Option(nil), e.opts...), opts...)
	ne.cfg = buildConfig(ne.opts)
	return &ne
}

// Stats returns the preprocessing summary.
func (e *Engine) Stats() EngineStats { return e.stats }

// builtinName resolves measureName through the registry and reports the
// canonical built-in name it denotes, or "" when the name is bound to a
// user-registered implementation — a re-registered built-in name must get
// the override, not the engine's fast path.
func (e *Engine) builtinName(measureName string) (string, Measure, error) {
	m, err := Lookup(measureName, e.opts...)
	if err != nil {
		return "", nil, err
	}
	if bm, ok := m.(*measure); ok {
		return bm.name, m, nil
	}
	return "", m, nil
}

// SingleSource returns the scores of query node q against every node under
// the named measure, served from the cached structures where the measure
// supports it.
func (e *Engine) SingleSource(ctx context.Context, measureName string, q int) ([]float64, error) {
	if err := e.checkQuery(ctx, q); err != nil {
		return nil, err
	}
	builtin, m, err := e.builtinName(measureName)
	if err != nil {
		return nil, err
	}
	switch builtin {
	// Single-source SimRank* factors through walk vectors and never
	// materialises the matrix, so the memo variants share the iterative
	// fast path (the results are identical).
	case MeasureGeometric, MeasureGeometricMemo:
		return core.SingleSourceGeometricFromTransition(ctx, e.backward, q, e.cfg.coreOptions())
	case MeasureExponential, MeasureExponentialMemo:
		return core.SingleSourceExponentialFromTransition(ctx, e.backward, q, e.cfg.coreOptions())
	case MeasureRWR:
		return rwr.SingleSourceFromTransition(ctx, e.forward, q, e.cfg.rwrOptions())
	}
	return m.SingleSource(ctx, e.g, q)
}

// TopK returns the k nodes most similar to q under the named measure,
// excluding q itself and any nodes in exclude (e.g. existing neighbours
// when recommending new links). Ties break by node id.
func (e *Engine) TopK(ctx context.Context, measureName string, q, k int, exclude ...int) ([]Ranked, error) {
	scores, err := e.SingleSource(ctx, measureName, q)
	if err != nil {
		return nil, err
	}
	return TopK(scores, k, append([]int{q}, exclude...)...), nil
}

// AllPairs computes the full similarity matrix under the named measure,
// reusing the cached transition matrices and compression.
func (e *Engine) AllPairs(ctx context.Context, measureName string) (*Scores, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	builtin, m, err := e.builtinName(measureName)
	if err != nil {
		return nil, err
	}
	opt := e.cfg.coreOptions()
	switch builtin {
	case MeasureGeometric:
		m, err := core.GeometricFromTransition(ctx, e.backward, opt)
		return wrapDense(m, err)
	case MeasureGeometricMemo:
		m, err := core.GeometricFromCompressed(ctx, e.comp, opt)
		return wrapDense(m, err)
	case MeasureExponential:
		m, err := core.ExponentialFromTransition(ctx, e.backward, opt)
		return wrapDense(m, err)
	case MeasureExponentialMemo:
		m, err := core.ExponentialFromCompressed(ctx, e.comp, opt)
		return wrapDense(m, err)
	case MeasureSimRankMatrix:
		m, err := simrank.MatrixFormFromTransition(ctx, e.backward, e.cfg.simrankOptions())
		return wrapDense(m, err)
	case MeasureRWR:
		m, err := rwr.AllPairsFromTransition(ctx, e.forward, e.cfg.rwrOptions())
		return wrapDense(m, err)
	}
	return m.AllPairs(ctx, e.g)
}

func wrapDense(m *dense.Matrix, err error) (*Scores, error) {
	if err != nil {
		return nil, err
	}
	return denseScores(m), nil
}

func (e *Engine) checkQuery(ctx context.Context, q int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if q < 0 || q >= e.g.N() {
		return fmt.Errorf("simstar: query node %d out of range [0, %d)", q, e.g.N())
	}
	return nil
}
