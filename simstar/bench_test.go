package simstar_test

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/simstar"
)

// The engine's reason to exist: SingleSource served from the cached CSR
// transition matrix versus the standalone measure path, which rebuilds the
// transition matrix from the graph on every call. Compare:
//
//	go test ./simstar -bench 'SingleSource' -benchmem
//
// The gap is the per-request preprocessing a serving system saves.
func benchmarkGraph(b *testing.B) *simstar.Graph {
	b.Helper()
	return dataset.RMATDefault(12, 8, 1234) // 4096 nodes, heavy-tailed
}

func BenchmarkSingleSourceEngineCached(b *testing.B) {
	g := benchmarkGraph(b)
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(5))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, i%g.N()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleSourceRebuildPerCall(b *testing.B) {
	g := benchmarkGraph(b)
	m, err := simstar.Lookup(simstar.MeasureGeometric, simstar.WithC(0.6), simstar.WithK(5))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SingleSource(ctx, g, i%g.N()); err != nil {
			b.Fatal(err)
		}
	}
}

// Same comparison for RWR, whose forward transition matrix the engine also
// caches.
func BenchmarkSingleSourceRWREngineCached(b *testing.B) {
	g := benchmarkGraph(b)
	eng := simstar.NewEngine(g, simstar.WithK(5))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SingleSource(ctx, simstar.MeasureRWR, i%g.N()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleSourceRWRRebuildPerCall(b *testing.B) {
	g := benchmarkGraph(b)
	m, err := simstar.Lookup(simstar.MeasureRWR, simstar.WithK(5))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SingleSource(ctx, g, i%g.N()); err != nil {
			b.Fatal(err)
		}
	}
}

// The batch layer's reason to exist: the same queries through MultiSource
// versus a serial SingleSource loop. Both run with the result cache
// disabled, so the gap is the blocked kernels (one SpMM sweep per iteration
// for the whole block instead of one matvec per query) plus, on multi-core
// hosts, the worker fan-out — not cache hits. Compare:
//
//	go test ./simstar -bench 'Batch' -benchmem
const batchBenchQueries = 64

func benchBatch(b *testing.B) (*simstar.Engine, []simstar.Query) {
	b.Helper()
	g := benchmarkGraph(b)
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(5), simstar.WithCacheSize(-1))
	queries := make([]simstar.Query, batchBenchQueries)
	for i := range queries {
		queries[i] = simstar.Query{Measure: simstar.MeasureGeometric, Node: (i * 37) % g.N()}
	}
	return eng, queries
}

func BenchmarkBatchMultiSource(b *testing.B) {
	eng, queries := benchBatch(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range eng.MultiSource(ctx, queries) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func BenchmarkBatchSerialSingleSource(b *testing.B) {
	eng, queries := benchBatch(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := eng.SingleSource(ctx, q.Measure, q.Node); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TopK on top of a cached single-source query: the full serving path.
func BenchmarkEngineTopK(b *testing.B) {
	g := benchmarkGraph(b)
	eng := simstar.NewEngine(g, simstar.WithK(5))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.TopK(ctx, simstar.MeasureGeometric, i%g.N(), 10); err != nil {
			b.Fatal(err)
		}
	}
}
