package simstar

import (
	"context"

	"repro/internal/core"
	"repro/internal/simrank"
)

// This file is the research surface of the API: the knobs the paper's
// evaluation section turns that a production caller normally leaves alone —
// the SVD baseline, iteration-count resolution, and the Section 3.2
// length-weight ablation. cmd/experiments runs entirely on these plus the
// registry, so the experiments exercise the same public API as any other
// client.

// MeasureMtxSimRank is Li et al.'s low-rank SVD SimRank solver (mtx-SR),
// the paper's cost-inhibitive baseline. Configure the retained rank with
// WithRank. It is registered like the other measures but carries the
// O(r⁶) caveat of the closed form.
const MeasureMtxSimRank = "mtx-simrank"

// WithRank truncates the SVD of the mtx-simrank measure to the given rank.
// 0 keeps every singular value above a numeric-rank cut-off. Only
// mtx-simrank reads it.
func WithRank(r int) Option { return func(cfg *config) { cfg.rank = r } }

func init() {
	registerBuiltin(MeasureMtxSimRank, factoryFor(MeasureMtxSimRank,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			// The SVD solver is not iterative; the entry check in AllPairs
			// is its cancellation point.
			m, err := simrank.MtxSR(g, simrank.MtxOptions{C: cfg.c, Rank: cfg.rank})
			if err != nil {
				return nil, err
			}
			return denseScores(m), nil
		}, nil))
	RegisterAlias("mtx-sr", MeasureMtxSimRank)
}

// IterationsGeometric resolves the iteration count the geometric solvers
// run under the given options: WithK's value, or the smallest K with
// Cᵏ⁺¹ <= ε when WithEps is set.
func IterationsGeometric(opts ...Option) int {
	return buildConfig(opts).coreOptions().IterationsGeometric()
}

// IterationsExponential resolves the iteration count the exponential
// solvers run: WithK's value, or the smallest K with Cᵏ⁺¹/(k+1)! <= ε when
// WithEps is set. The factorial decay is why the exponential form needs far
// fewer iterations at equal accuracy.
func IterationsExponential(opts ...Option) int {
	return buildConfig(opts).coreOptions().IterationsExponential()
}

// LengthWeight is a pluggable in-link path length weight for the Section
// 3.2 ablation: SimRank* scores paths by Σ_l w_l·(path mass at length l).
type LengthWeight = core.LengthWeight

// GeometricWeight is the paper's Cˡ weight (normalised), the one SimRank*
// adopts for its computable fixed point.
func GeometricWeight(c float64) LengthWeight { return core.GeometricWeight(c) }

// ExponentialWeight is the Cˡ/l! weight behind eSR*.
func ExponentialWeight(c float64) LengthWeight { return core.ExponentialWeight(c) }

// HarmonicWeight is the Cˡ/l candidate the paper rejects as not admitting
// a simplification.
func HarmonicWeight(c float64) LengthWeight { return core.HarmonicWeight(c) }

// SeriesWeighted evaluates the K-term weighted series by brute force under
// an arbitrary length weight — the ablation oracle. O(K²·n³): small graphs
// only.
func SeriesWeighted(g *Graph, w LengthWeight, k int) *Scores {
	return denseScores(core.SeriesWeighted(g, w, k))
}
