package simstar_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/simstar"
)

// An injected kernel panic must surface as an ErrKernelPanic-wrapped error
// on every serving path — never a process crash — and the engine must keep
// serving correct answers afterwards.
func TestKernelPanicIsolated(t *testing.T) {
	g := toyGraph(t)
	eng := simstar.NewEngine(g)
	boom := eng.With(simstar.WithFaultHook(func(site string) {
		if site == simstar.FaultPointKernel {
			panic("injected kernel fault")
		}
	}))
	ctx := context.Background()

	if _, err := boom.SingleSource(ctx, simstar.MeasureGeometric, 1); !errors.Is(err, simstar.ErrKernelPanic) {
		t.Fatalf("SingleSource: got %v, want ErrKernelPanic", err)
	}
	if _, err := boom.TopKStream(ctx, simstar.MeasureRWR, 1, 3); !errors.Is(err, simstar.ErrKernelPanic) {
		t.Fatalf("TopKStream: got %v, want ErrKernelPanic", err)
	}
	if _, err := boom.SingleSourceInto(ctx, simstar.MeasureExponential, 1, nil); !errors.Is(err, simstar.ErrKernelPanic) {
		t.Fatalf("SingleSourceInto: got %v, want ErrKernelPanic", err)
	}
	res := boom.MultiSource(ctx, []simstar.Query{
		{Measure: simstar.MeasureGeometric, Node: 0},
		{Measure: simstar.MeasureGeometric, Node: 1},
		{Measure: simstar.MeasureRWR, Node: 2},
	})
	for i, r := range res {
		if !errors.Is(r.Err, simstar.ErrKernelPanic) {
			t.Fatalf("batch result %d: got %v, want ErrKernelPanic", i, r.Err)
		}
	}

	// The shared engine (no hook) is unharmed: pooled workspaces and caches
	// survive the recovered panics and exact serving continues.
	scores, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1)
	if err != nil {
		t.Fatalf("engine did not survive injected panics: %v", err)
	}
	if scores[1] == 0 {
		t.Fatal("self-similarity vanished after recovered panics")
	}
}

// A query whose WithDeadline budget expires mid-kernel must abort with
// context.DeadlineExceeded, and an attached Observer must count the abort.
func TestWithDeadlineAbortsSlowQuery(t *testing.T) {
	g := toyGraph(t)
	o := simstar.NewObserver(nil)
	eng := simstar.NewEngine(g, simstar.WithObserver(o)).With(
		simstar.WithDeadline(time.Millisecond),
		simstar.WithCacheSize(-1),
		simstar.WithFaultHook(func(string) { time.Sleep(20 * time.Millisecond) }),
	)
	_, err := eng.SingleSource(context.Background(), simstar.MeasureGeometric, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	snap := o.Registry().Snapshot()
	if got := snap["simstar_deadline_exceeded_total"]; got != 1 {
		t.Fatalf("simstar_deadline_exceeded_total = %g, want 1", got)
	}
	if got := snap["simstar_cancel_latency_seconds_count"]; got != 1 {
		t.Fatalf("simstar_cancel_latency_seconds count = %g, want 1", got)
	}
}

// A generous deadline must not change what a query returns.
func TestWithDeadlineHarmless(t *testing.T) {
	g := toyGraph(t)
	eng := simstar.NewEngine(g)
	ctx := context.Background()
	want, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.With(simstar.WithDeadline(time.Minute), simstar.WithCacheSize(-1)).
		SingleSource(ctx, simstar.MeasureGeometric, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scores[%d] changed under a deadline: %g vs %g", i, got[i], want[i])
		}
	}
}

// HasCertifiedPath must say yes exactly for the measures whose WithTolerance
// path produces MaxError certificates.
func TestHasCertifiedPath(t *testing.T) {
	for _, name := range []string{
		simstar.MeasureGeometric, simstar.MeasureGeometricMemo,
		simstar.MeasureExponential, simstar.MeasureExponentialMemo,
		simstar.MeasureRWR,
	} {
		if !simstar.HasCertifiedPath(name) {
			t.Errorf("HasCertifiedPath(%q) = false, want true", name)
		}
	}
	for _, name := range []string{
		simstar.MeasureSimRank, simstar.MeasurePRank, simstar.MeasureSparse, "no-such-measure",
	} {
		if simstar.HasCertifiedPath(name) {
			t.Errorf("HasCertifiedPath(%q) = true, want false", name)
		}
	}
}
