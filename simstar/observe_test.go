package simstar_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/simstar"
)

// The observer must see every query kind, the cache outcomes and the kernel
// work — and observation must never change what a query returns.
func TestObserverCountsQueries(t *testing.T) {
	g := dataset.RMATDefault(8, 4, 7) // 256 nodes
	ctx := context.Background()
	o := simstar.NewObserver(nil)
	eng := simstar.NewEngine(g, simstar.WithObserver(o))
	plain := simstar.NewEngine(g)

	if eng.Metrics() != o {
		t.Fatal("Metrics did not return the configured observer")
	}
	if plain.Metrics() != nil {
		t.Fatal("unobserved engine reports a non-nil observer")
	}

	want, err := plain.SingleSource(ctx, simstar.MeasureGeometric, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("observed scores differ at %d: %g vs %g", i, got[i], want[i])
		}
	}
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 3); err != nil {
		t.Fatal(err) // cache hit
	}
	if _, err := eng.TopK(ctx, simstar.MeasureRWR, 5, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TopKStream(ctx, simstar.MeasureGeometric, 7, 4); err != nil {
		t.Fatal(err)
	}
	res := eng.BatchTopK(ctx, []simstar.Query{
		{Measure: simstar.MeasureGeometric, Node: 1, K: 3},
		{Measure: simstar.MeasureExponential, Node: 2, K: 3},
		{Measure: simstar.MeasureSimRank, Node: 3, K: 3}, // fan-out path
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("batch query %d: %v", i, r.Err)
		}
	}

	snap := o.Registry().Snapshot()
	wantCounts := map[string]float64{
		`simstar_queries_total{kind="single_source"}`: 3, // 2 SingleSource + TopK
		`simstar_queries_total{kind="stream"}`:        1,
		`simstar_queries_total{kind="batch"}`:         3,
		`simstar_cache_hits_total`:                    1,
	}
	for key, want := range wantCounts {
		if got := snap[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	if snap["simstar_cache_misses_total"] < 5 {
		t.Errorf("cache misses = %g, want >= 5", snap["simstar_cache_misses_total"])
	}
	if snap["simstar_kernel_sweeps_total"] == 0 {
		t.Error("no kernel sweeps recorded")
	}
	if snap["simstar_kernel_seconds_count"] == 0 {
		t.Error("no kernel latencies observed")
	}
	if snap["simstar_workspace_pool_misses_total"] == 0 {
		t.Error("no workspace pool misses recorded despite a cold pool")
	}

	// The registry must render parseable exposition text.
	var sb strings.Builder
	if err := o.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if parsed[`simstar_queries_total{kind="batch"}`] != 3 {
		t.Error("rendered exposition disagrees with snapshot")
	}
}

// Traces must stage the query lifecycle and agree with the untraced APIs.
func TestTraceSingleSourceAndTopK(t *testing.T) {
	g := dataset.RMATDefault(8, 4, 11)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithRelabeling(simstar.RelabelDegree))

	want, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 9)
	if err != nil {
		t.Fatal(err)
	}
	eng.PurgeCache()
	scores, tr, err := eng.TraceSingleSource(ctx, simstar.MeasureGeometric, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("traced scores differ at %d", i)
		}
	}
	if tr.Measure != simstar.MeasureGeometric || tr.Node != 9 {
		t.Fatalf("trace identity wrong: %+v", tr)
	}
	if tr.Layout != "degree" {
		t.Fatalf("trace layout = %q, want degree", tr.Layout)
	}
	if tr.Cached {
		t.Fatal("fresh query reported cached")
	}
	stages := make(map[string]bool)
	for _, sp := range tr.Spans {
		stages[sp.Stage] = true
		if sp.DurationUs < 0 {
			t.Fatalf("negative span duration: %+v", sp)
		}
	}
	for _, stage := range []string{"plan", "cache", "kernel"} {
		if !stages[stage] {
			t.Errorf("trace missing %q span (got %v)", stage, tr.Spans)
		}
	}
	if tr.Kernel.Sweeps == 0 {
		t.Error("trace kernel detail missing sweep count")
	}
	if tr.TotalUs <= 0 {
		t.Error("trace missing total time")
	}

	// Second trace of the same query: a cache hit with no kernel stage.
	_, tr2, err := eng.TraceSingleSource(ctx, simstar.MeasureGeometric, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.Cached || tr2.Kernel.Sweeps != 0 {
		t.Fatalf("cached trace wrong: cached=%v kernel=%+v", tr2.Cached, tr2.Kernel)
	}

	wantTop, err := eng.TopK(ctx, simstar.MeasureRWR, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	top, trk, err := eng.TraceTopK(ctx, simstar.MeasureRWR, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != len(wantTop) {
		t.Fatalf("traced TopK returned %d entries, want %d", len(top), len(wantTop))
	}
	for i := range wantTop {
		if top[i] != wantTop[i] {
			t.Fatalf("traced TopK disagrees at %d: %+v vs %+v", i, top[i], wantTop[i])
		}
	}
	if trk.K != 5 {
		t.Fatalf("TopK trace K = %d", trk.K)
	}
	found := false
	for _, sp := range trk.Spans {
		if sp.Stage == "select" {
			found = true
		}
	}
	if !found {
		t.Errorf("TopK trace missing select span: %v", trk.Spans)
	}
}

// Sieved-approximate queries must surface their frontier and certificate
// detail through the trace and their spend through the observer.
func TestTraceApproximateKernelDetail(t *testing.T) {
	g := dataset.RMATDefault(9, 4, 3)
	ctx := context.Background()
	o := simstar.NewObserver(nil)
	const tol = 1e-3
	eng := simstar.NewEngine(g, simstar.WithObserver(o), simstar.WithTolerance(tol))

	_, tr, err := eng.TraceSingleSource(ctx, simstar.MeasureGeometric, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxError > tol {
		t.Fatalf("MaxError %g exceeds tolerance %g", tr.MaxError, tol)
	}
	if tr.Kernel.FrontierMax == 0 {
		t.Error("approximate trace missing frontier width")
	}
	if tr.Kernel.SievePoints == 0 {
		t.Error("approximate trace missing sieve points")
	}
	if tr.Kernel.Certificate != tr.MaxError {
		t.Errorf("kernel certificate %g != MaxError %g", tr.Kernel.Certificate, tr.MaxError)
	}
	snap := o.Registry().Snapshot()
	if snap["simstar_sieve_spend_total"] <= 0 {
		t.Error("observer recorded no sieve spend")
	}
}

// Counters must follow graph epochs: the refreshed state's pool reports
// into the same observer, and queries keep counting after ApplyEdits.
func TestObserverSurvivesEpochs(t *testing.T) {
	g := dataset.RMATDefault(7, 4, 5)
	ctx := context.Background()
	o := simstar.NewObserver(nil)
	eng := simstar.NewEngine(g, simstar.WithObserver(o))
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	before := o.Registry().Snapshot()[`simstar_queries_total{kind="single_source"}`]
	if _, err := eng.ApplyEdits(simstar.InsertEdge(0, 1), simstar.DeleteEdge(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	after := o.Registry().Snapshot()[`simstar_queries_total{kind="single_source"}`]
	if after != before+1 {
		t.Fatalf("single_source count %g -> %g across an epoch, want +1", before, after)
	}
}

// The zero-alloc serving contract must hold with the observer ON: the
// kernel trace borrows the pooled workspace's scratch and every counter
// update is a bare atomic.
func TestObservedSingleSourceIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; alloc counts are not meaningful")
	}
	g := dataset.RMATDefault(9, 4, 13)
	ctx := context.Background()
	o := simstar.NewObserver(nil)
	eng := simstar.NewEngine(g, simstar.WithObserver(o), simstar.WithCacheSize(-1))
	buf := make([]float64, g.N())
	for _, measure := range []string{simstar.MeasureGeometric, simstar.MeasureExponential, simstar.MeasureRWR} {
		if _, err := eng.SingleSourceInto(ctx, measure, 0, buf); err != nil {
			t.Fatal(err)
		}
		q := 0
		allocs := testing.AllocsPerRun(50, func() {
			var err error
			if _, err = eng.SingleSourceInto(ctx, measure, q%g.N(), buf); err != nil {
				t.Fatal(err)
			}
			q++
		})
		// Same slack as the unobserved test: a GC can empty the sync.Pool
		// mid-measurement; one full alloc per run is a real regression.
		if allocs >= 1 {
			t.Fatalf("%s: %v allocs/op on the observed pooled path", measure, allocs)
		}
	}
	if o.Registry().Snapshot()["simstar_kernel_sweeps_total"] == 0 {
		t.Fatal("observed Into path recorded no sweeps")
	}
}
