package simstar_test

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/simstar"
)

// Conformance contract of WithParallelSweeps: the sweep partition preserves
// per-element accumulation order, so every query result — scores, MaxError
// certificates, rankings — must be bitwise-identical to the serial engine at
// every worker count, for every registered measure, exact and sieved, in
// natural and relabelled layouts.

// parallelWorkerCounts are the fan-out widths the conformance tests sweep.
func parallelWorkerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// parallelGraph builds a seeded random graph dense enough that the sieved
// kernels' frontiers clear the parallel-gather support gate, so the parallel
// scatter path genuinely runs.
func parallelGraph(t testing.TB, n, m int) *simstar.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	set := make(map[[2]int]bool)
	var edges [][2]int
	for len(edges) < m {
		e := [2]int{rng.Intn(n), rng.Intn(n)}
		if e[0] != e[1] && !set[e] {
			set[e] = true
			edges = append(edges, e)
		}
	}
	return simstar.GraphFromEdges(n, edges)
}

// Every registered measure must answer bitwise-identically at every worker
// count. The non-fast-path measures have no parallel sweeps — the assertion
// is then that WithParallelSweeps stays inert — so the toy graph suffices
// (some registered baselines, like mtx-SimRank, are deliberately
// cost-prohibitive at any real size); the fast-path family gets the full
// fan-out exercise on a larger graph below.
func TestParallelSweepsBitwiseAllMeasures(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	probes := []int{0, 3, g.N() - 1}
	base := []simstar.Option{simstar.WithC(0.6), simstar.WithK(4), simstar.WithCacheSize(-1)}
	serial := simstar.NewEngine(g, base...)
	for _, name := range simstar.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			want := make(map[int][]float64)
			for _, q := range probes {
				s, err := serial.SingleSource(ctx, name, q)
				if err != nil {
					t.Fatal(err)
				}
				want[q] = s
			}
			for _, w := range parallelWorkerCounts() {
				eng := simstar.NewEngine(g, append(append([]simstar.Option(nil), base...), simstar.WithParallelSweeps(w))...)
				for _, q := range probes {
					got, err := eng.SingleSource(ctx, name, q)
					if err != nil {
						t.Fatal(err)
					}
					if !float64sEqual(got, want[q]) {
						t.Fatalf("%s workers=%d q=%d: parallel scores differ from serial", name, w, q)
					}
				}
			}
		})
	}
}

// The exact fast-path kernels — the ones WithParallelSweeps actually fans
// out — must stay bitwise-identical on a graph large enough that every
// worker owns a real row range.
func TestParallelSweepsBitwiseFastPath(t *testing.T) {
	g := parallelGraph(t, 150, 900)
	ctx := context.Background()
	probes := []int{0, 7, 93, 149}
	measures := []string{
		simstar.MeasureGeometric, simstar.MeasureGeometricMemo,
		simstar.MeasureExponential, simstar.MeasureExponentialMemo,
		simstar.MeasureRWR,
	}
	base := []simstar.Option{simstar.WithC(0.6), simstar.WithK(4), simstar.WithCacheSize(-1)}
	serial := simstar.NewEngine(g, base...)
	for _, name := range measures {
		for _, q := range probes {
			want, err := serial.SingleSource(ctx, name, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parallelWorkerCounts() {
				eng := simstar.NewEngine(g, append(append([]simstar.Option(nil), base...), simstar.WithParallelSweeps(w))...)
				got, err := eng.SingleSource(ctx, name, q)
				if err != nil {
					t.Fatal(err)
				}
				if !float64sEqual(got, want) {
					t.Fatalf("%s workers=%d q=%d: parallel scores differ from serial", name, w, q)
				}
			}
		}
	}
}

// The sieved paths must reproduce both the scores and the MaxError
// certificate bitwise: the error budget is spent in the same order at every
// worker count because the parallel scatter canonicalises its frontier.
func TestParallelSweepsSievedCertificatesIdentical(t *testing.T) {
	g := parallelGraph(t, 400, 3200)
	ctx := context.Background()
	probes := []int{3, 41, 256, 399}
	measures := []string{
		simstar.MeasureGeometric, simstar.MeasureExponential, simstar.MeasureRWR,
	}
	base := []simstar.Option{
		simstar.WithC(0.6), simstar.WithK(5),
		simstar.WithTolerance(1e-3), simstar.WithCacheSize(-1),
	}
	serial := simstar.NewEngine(g, base...)
	for _, name := range measures {
		for _, q := range probes {
			want, wantErr, err := serial.SingleSourceCertified(ctx, name, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parallelWorkerCounts() {
				eng := simstar.NewEngine(g, append(append([]simstar.Option(nil), base...), simstar.WithParallelSweeps(w))...)
				got, gotErr, err := eng.SingleSourceCertified(ctx, name, q)
				if err != nil {
					t.Fatal(err)
				}
				if gotErr != wantErr {
					t.Fatalf("%s workers=%d q=%d: certificate %g != serial %g", name, w, q, gotErr, wantErr)
				}
				if !float64sEqual(got, want) {
					t.Fatalf("%s workers=%d q=%d: sieved scores differ from serial", name, w, q)
				}
			}
		}
	}
}

// Relabelled engines must stay bitwise-conformant too: the parallel sweeps
// run on the permuted operators, and translation back to external ids is
// order-independent.
func TestParallelSweepsBitwiseRelabeled(t *testing.T) {
	g := parallelGraph(t, 150, 900)
	ctx := context.Background()
	probes := []int{0, 7, 93, 149}
	measures := []string{
		simstar.MeasureGeometric, simstar.MeasureExponential, simstar.MeasureRWR,
	}
	for _, mode := range []simstar.RelabelMode{simstar.RelabelDegree, simstar.RelabelRCM} {
		base := []simstar.Option{
			simstar.WithC(0.6), simstar.WithK(4),
			simstar.WithRelabeling(mode), simstar.WithCacheSize(-1),
		}
		serial := simstar.NewEngine(g, base...)
		for _, name := range measures {
			for _, q := range probes {
				want, err := serial.SingleSource(ctx, name, q)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range parallelWorkerCounts() {
					eng := simstar.NewEngine(g, append(append([]simstar.Option(nil), base...), simstar.WithParallelSweeps(w))...)
					got, err := eng.SingleSource(ctx, name, q)
					if err != nil {
						t.Fatal(err)
					}
					if !float64sEqual(got, want) {
						t.Fatalf("mode=%d %s workers=%d q=%d: relabelled parallel scores differ", mode, name, w, q)
					}
				}
			}
		}
	}
}

// The batch planner may reroute groups between the blocked, sieved and
// fan-out executions, and the parallel sweeps may fan the kernels out — but
// the answers must stay bitwise those of serial SingleSource calls.
func TestParallelSweepsBatchBitwise(t *testing.T) {
	g := parallelGraph(t, 150, 900)
	ctx := context.Background()
	base := []simstar.Option{simstar.WithC(0.6), simstar.WithK(4), simstar.WithCacheSize(-1)}
	serial := simstar.NewEngine(g, base...)
	var queries []simstar.Query
	for q := 0; q < 24; q++ {
		queries = append(queries, simstar.Query{Measure: simstar.MeasureGeometric, Node: q * 6})
		queries = append(queries, simstar.Query{Measure: simstar.MeasureRWR, Node: q * 5})
	}
	queries = append(queries, simstar.Query{Measure: simstar.MeasureExponential, Node: 11})
	for _, w := range parallelWorkerCounts() {
		eng := simstar.NewEngine(g, append(append([]simstar.Option(nil), base...), simstar.WithParallelSweeps(w))...)
		results := eng.MultiSource(ctx, queries)
		for i, res := range results {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			want, err := serial.SingleSource(ctx, queries[i].Measure, queries[i].Node)
			if err != nil {
				t.Fatal(err)
			}
			if !float64sEqual(res.Scores, want) {
				t.Fatalf("workers=%d query %d (%s, %d): batch scores differ from serial single-source",
					w, i, queries[i].Measure, queries[i].Node)
			}
		}
	}
}

// TopKStream's fused selection must hand out the same entries at every
// worker count — the kernel underneath is bitwise-identical, so the ranking
// and its tie-breaks are too.
func TestParallelSweepsTopKStreamBitwise(t *testing.T) {
	g := parallelGraph(t, 150, 900)
	ctx := context.Background()
	base := []simstar.Option{simstar.WithC(0.6), simstar.WithK(4), simstar.WithCacheSize(-1)}
	serial := simstar.NewEngine(g, base...)
	for _, name := range []string{simstar.MeasureGeometric, simstar.MeasureRWR} {
		ws, err := serial.TopKStream(ctx, name, 7, 10)
		if err != nil {
			t.Fatal(err)
		}
		want := ws.Collect()
		for _, w := range parallelWorkerCounts() {
			eng := simstar.NewEngine(g, append(append([]simstar.Option(nil), base...), simstar.WithParallelSweeps(w))...)
			gs, err := eng.TopKStream(ctx, name, 7, 10)
			if err != nil {
				t.Fatal(err)
			}
			got := gs.Collect()
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: stream length %d != %d", name, w, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d entry %d: %+v != %+v", name, w, i, got[i], want[i])
				}
			}
		}
	}
}

// Soak: parallel queries racing ApplyEdits. Every answer must be coherent —
// the sweeper is borrowed per query against one pinned epoch state — and the
// run is primarily a -race exercise of the worker handoff under churn.
func TestParallelSweepsEditSoak(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(5))
	set := make(map[[2]int]bool)
	var edges [][2]int
	for len(edges) < 512 {
		e := [2]int{rng.Intn(n), rng.Intn(n)}
		if !set[e] {
			set[e] = true
			edges = append(edges, e)
		}
	}
	eng := simstar.NewEngine(
		simstar.GraphFromEdges(n, append([][2]int(nil), edges...)),
		simstar.WithK(4), simstar.WithParallelSweeps(4),
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			measures := []string{simstar.MeasureGeometric, simstar.MeasureExponential, simstar.MeasureRWR}
			for i := 0; i < 30; i++ {
				m := measures[i%len(measures)]
				q := rng.Intn(n)
				switch i % 3 {
				case 0:
					if _, err := eng.SingleSource(ctx, m, q); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := eng.TopKStream(ctx, m, q, 8); err != nil {
						t.Error(err)
						return
					}
				default:
					res := eng.MultiSource(ctx, []simstar.Query{{Measure: m, Node: q}, {Measure: m, Node: (q + 1) % n}})
					for _, rr := range res {
						if rr.Err != nil {
							t.Error(rr.Err)
							return
						}
					}
				}
			}
		}(int64(100 + r))
	}
	editRng := rand.New(rand.NewSource(9))
	for b := 0; b < 6; b++ {
		batch, next := soakEdits(editRng, edges, set)
		edges = next
		if _, err := eng.ApplyEdits(batch...); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}
