//go:build race

package simstar_test

// raceEnabled reports whether the race detector instruments this build.
// Under -race, sync.Pool deliberately drops items to expose races, so
// allocation-count assertions over pooled paths cannot hold.
const raceEnabled = true
