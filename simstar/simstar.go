// Package simstar is the public face of this repository: one API over the
// whole family of node-pair similarity measures the paper studies —
// geometric and exponential SimRank* (iterative and memoized), classic
// SimRank, P-Rank, RWR and the threshold-sieved sparse SimRank* solver.
//
// The package separates the two phases a serving system must keep apart:
//
//   - Measure: a pluggable similarity measure selected by name from a
//     registry (Register / Lookup). Every measure answers all-pairs and
//     single-source queries under a context, so deadlines and cancellation
//     work end-to-end.
//   - Engine: per-graph preprocessing done once — the CSR transition
//     matrices and the biclique edge-concentration compression — then
//     reused by every query. The measures rebuild these structures per
//     call; the Engine is what makes heavy query traffic affordable.
//
// The served graph is dynamic: Engine.ApplyEdits streams edge insertions
// and removals through a versioned store, each materialised batch becoming
// a new graph epoch whose preprocessing is refreshed incrementally and
// whose scores are bitwise-identical to a from-scratch build. Queries and
// mutations never block each other — a query answers from the epoch it
// pinned at entry. Engine.Snapshot/WriteSnapshot/ReadSnapshot persist an
// epoch for warm restarts.
//
// Queries can trade a bounded amount of accuracy for speed: WithTolerance
// routes the single-source fast paths through threshold-sieved sparse
// propagation, where each sweep drops mass that provably cannot move any
// score past the remaining error budget. Every result then carries a
// certified bound — Engine.SingleSourceCertified and Result.MaxError
// report MaxError with |approx − exact| <= MaxError <= eps element-wise —
// while the default (no tolerance) stays bitwise-identical to the exact
// kernels. The result cache keys on the tolerance, so an approximate entry
// can never serve a tighter request.
//
// On top of the Engine sits the batch layer a serving system talks to:
// MultiSource and BatchTopK answer many single-source queries in one call,
// serving repeats from a size-bounded LRU result cache, stacking
// same-measure queries into blocked kernels (one sparse sweep per iteration
// for the whole block), and fanning the rest across a worker pool. Batching
// changes the cost of a query, never its answer. cmd/simserve exposes all
// of this over HTTP/JSON; ARCHITECTURE.md in the repository root draws the
// full picture.
//
// Quickstart:
//
//	g, _ := simstar.ReadGraph(f)
//	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(8))
//	top, _ := eng.TopK(ctx, simstar.MeasureGeometric, query, 10)
//
// a batch, with a per-query override:
//
//	results := eng.BatchTopK(ctx, []simstar.Query{
//		{Measure: simstar.MeasureGeometric, Node: a, K: 10},
//		{Measure: simstar.MeasureRWR, Node: b, K: 5, Opts: []simstar.Option{simstar.WithK(12)}},
//	})
//
// or, without an engine, through the registry:
//
//	m, _ := simstar.Lookup("rwr", simstar.WithK(8))
//	scores, _ := m.AllPairs(ctx, g)
package simstar

import (
	"io"

	"repro/internal/core"
	"repro/internal/graph"
)

// Graph is the directed-graph substrate shared by all measures: a compact
// immutable CSR representation with both adjacency directions, node labels
// and text serialisation. It aliases the internal implementation so graphs
// flow between this API and the rest of the repository without conversion.
type Graph = graph.Graph

// GraphBuilder accumulates nodes and edges and produces an immutable Graph.
type GraphBuilder = graph.Builder

// GraphStats summarises a graph (node/edge counts, degrees, shape).
type GraphStats = graph.Stats

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// ReadGraph parses a SNAP-style edge list ("u<TAB>v" per line, '#' comments;
// labelled if any endpoint is non-numeric).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph serialises g in the format ReadGraph parses.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// GraphFromEdges builds an unlabelled graph on n nodes from an edge list.
func GraphFromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// Explanation is one in-link path pair contributing to a geometric SimRank*
// score — the Section 3.2 decomposition of the measure.
type Explanation = core.Explanation

// Explain decomposes the geometric SimRank* score of (a, b) into in-link
// path contributions of total length <= maxLen, sorted by descending
// contribution. maxWalks caps the enumeration per (node, length); 0 means
// the default.
func Explain(g *Graph, a, b int, c float64, maxLen, maxWalks int) []Explanation {
	return core.ExplainGeometric(g, a, b, c, maxLen, maxWalks)
}

// ExplainedScore sums the contributions — the reconstructed partial sum.
func ExplainedScore(exps []Explanation) float64 { return core.ExplainedScore(exps) }
