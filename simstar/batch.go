package simstar

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rwr"
	"repro/internal/sparse"
)

// Query is one single-source unit of work in a batch. The zero value of the
// optional fields means "use the engine's defaults": no per-query option
// overrides, no exclusions, and — for BatchTopK — K <= 0 yields an empty
// ranking, per the TopK boundary contract.
type Query struct {
	// Measure is the registry name (or alias) of the measure to run.
	Measure string
	// Node is the query node.
	Node int
	// K is the ranking size for BatchTopK; MultiSource ignores it.
	K int
	// Exclude lists nodes to drop from a BatchTopK ranking, in addition to
	// the query node itself; MultiSource ignores it.
	Exclude []int
	// Opts are layered on top of the engine's options for this query only,
	// exactly as Engine.With would apply them (so structure-shaping options
	// like WithMiner do not re-mine; see Engine.With).
	Opts []Option
}

// Result is the outcome of one Query in a batch. Results are positional:
// the i-th Result answers the i-th Query. Exactly one of Scores/Top is
// populated on success — Scores by MultiSource, Top by BatchTopK — and Err
// is non-nil otherwise. One query failing never fails its batch.
type Result struct {
	// Scores is the full score vector of the query node against every node
	// (MultiSource only). The slice is the caller's to keep and mutate.
	Scores []float64
	// Top is the ranked result (BatchTopK only).
	Top []Ranked
	// Cached reports whether the underlying score vector was served from
	// the engine's result cache rather than computed.
	Cached bool
	// MaxError is the certified element-wise bound on how far the
	// underlying score vector can be from the exact kernels at the query's
	// parameters: 0 for exact queries, at most the configured tolerance for
	// sieved-approximate ones (see WithTolerance).
	MaxError float64
	// Err is the per-query error: an unknown measure, an out-of-range
	// node, or ctx's error for queries cancelled or skipped mid-batch.
	Err error
}

// Stream adapts a BatchTopK Result into the lazy iterator form, carrying
// the result's Cached flag and MaxError certificate. The stream aliases
// Top — it is a view, not a copy — so a consumer can hand batch answers to
// the same sink that consumes Engine.TopKStream. A failed or MultiSource
// result streams zero entries.
func (r *Result) Stream() *TopKStream {
	return &TopKStream{ranked: r.Top, maxErr: r.MaxError, cached: r.Cached}
}

// MultiSource answers a batch of single-source queries, sharing work three
// ways no serial loop of SingleSource calls can:
//
//   - Cache first: queries answered recently come straight from the
//     engine's result cache, and duplicate queries inside one batch are
//     computed once.
//   - Blocked kernels: queries on the same measure family with the same
//     parameters (SimRank* geometric/exponential and RWR — the measures
//     with native single-source forms) are stacked into n×B blocks and
//     answered by one blocked sweep per iteration over the cached
//     transition structure, instead of one sweep per query.
//   - Fan-out: everything else is spread across a worker pool (WithWorkers
//     bounds it; the default is one worker per CPU), dispatching queries
//     from a shared counter so one expensive query does not serialise a
//     chunk of the batch behind it.
//
// How each kernel group executes — blocked, sieved, or single-source
// fan-out, and at what chunk width — is chosen per batch by a greedy cost
// heuristic (see planGroup); the plan changes the cost, never the answer.
//
// Each query may carry Opts overriding the engine's parameters for that
// query alone. Cancellation is two-level: ctx aborts the kernels of queries
// already running (they return ctx's error in their Result) and stops
// undispatched queries from starting, which report ctx's error likewise.
// The returned slice always has len(queries) entries, in query order, and
// every entry's scores are identical to what SingleSource returns for that
// query — batching changes the cost, never the answer.
func (e *Engine) MultiSource(ctx context.Context, queries []Query) []Result {
	return e.batch(ctx, queries, false, nil)
}

// BatchTopK is MultiSource for ranked queries: it answers each Query with
// the Query.K nodes most similar to Query.Node under Query.Measure,
// excluding the query node and Query.Exclude, with ties broken by node id.
// Boundary semantics per query follow TopK: K <= 0 yields an empty Top,
// K larger than the candidate count yields every candidate.
func (e *Engine) BatchTopK(ctx context.Context, queries []Query) []Result {
	return e.batch(ctx, queries, true, nil)
}

// MultiSourceTrace is MultiSource with the batch planner's decisions
// recorded into the caller's trace: tr.Plan lists, per kernel group, the
// route chosen and the chunk width (sorted for determinism). The caller
// owns every other trace field, including the Finish stamp; a nil tr makes
// it exactly MultiSource.
func (e *Engine) MultiSourceTrace(ctx context.Context, queries []Query, tr *obs.Trace) []Result {
	return e.batch(ctx, queries, false, tr)
}

// BatchTopKTrace is BatchTopK with the batch planner's decisions recorded
// into the caller's trace, exactly as MultiSourceTrace records them.
func (e *Engine) BatchTopKTrace(ctx context.Context, queries []Query, tr *obs.Trace) []Result {
	return e.batch(ctx, queries, true, tr)
}

// blockColumns caps the width of one blocked-kernel invocation. Each column
// costs the kernel O(K·n) floats of workspace — the same transient footprint
// as one single-source query — so the cap bounds batch memory at roughly 64
// in-flight queries' worth regardless of batch size.
const blockColumns = 64

// blockKernel names a blocked multi-source kernel.
type blockKernel int

const (
	blockNone blockKernel = iota
	blockGeometric
	blockExponential
	blockRWR
)

// blockKernelFor maps a resolved built-in measure to its blocked kernel.
// The memo variants share the iterative single-source fast path (see
// Engine.SingleSource), so they block identically.
func blockKernelFor(builtin string) blockKernel {
	switch builtin {
	case MeasureGeometric, MeasureGeometricMemo:
		return blockGeometric
	case MeasureExponential, MeasureExponentialMemo:
		return blockExponential
	case MeasureRWR:
		return blockRWR
	}
	return blockNone
}

// groupRoute is the execution strategy the batch planner picks for one
// kernel group.
type groupRoute int

const (
	// routeFanout answers the group's queries through the pooled
	// single-source fast path on the worker pool, cache-probe-first: each
	// query re-probes the result cache at dispatch, catching entries
	// populated after the batch's phase-1 probe.
	routeFanout groupRoute = iota
	// routeBlocked stacks the group into n×B dense blocks and runs the
	// exact blocked SpMM kernels.
	routeBlocked
	// routeSieved runs the threshold-sieved approximate kernels, chunked
	// across the worker pool.
	routeSieved
)

func (r groupRoute) String() string {
	switch r {
	case routeFanout:
		return "fanout"
	case routeBlocked:
		return "blocked"
	case routeSieved:
		return "sieved"
	}
	return "?"
}

// groupPlan is the planner's decision for one kernel group: the route, the
// chunk width one kernel invocation covers, and a human-readable note for
// the query trace.
type groupPlan struct {
	route groupRoute
	chunk int
	note  string
}

// planGroup is the greedy cost heuristic behind MultiSource and BatchTopK:
// given one kernel group's parameters, its width b (distinct query nodes),
// the graph shape (n nodes, m edges), the batch worker budget, and the
// result cache's lifetime hit rate, pick how the group executes. The
// signals, in the order they gate:
//
//   - Tolerance: sieved groups always stay sieved — the MaxError
//     certificate is part of the answer, so rerouting to an exact kernel
//     would change what the query returns, not just its cost. The chunk
//     width comes from the expected frontier growth d̄ᵏ (d̄ = m/n): a
//     frontier that saturates the graph makes every query cost a
//     dense-like sweep, so saturating groups split ~4× finer than the
//     worker count for load balance, while cheap sparse-frontier groups
//     split once per worker to minimise per-chunk workspace setup.
//   - Width: a group of one — or of ≤ 2 when the result cache has been
//     absorbing at least half of recent lookups — cannot amortise a
//     blocked run's transpose access and O(K·n·B) workspace, so it routes
//     to the pooled zero-alloc single-source path, which also re-probes
//     the cache right before computing.
//   - Block width: everything else runs blocked, chunked at the dense
//     panel-kernel crossover (sparse.PanelMaxCols, the width
//     BenchmarkMulDenseWidth measures the panel kernel to win from) when
//     the group fits one panel chunk, at blockColumns otherwise to bound
//     workspace memory.
//
// The plan is pure — same inputs, same decision — and changes only the
// execution schedule, never any result.
func planGroup(cfg config, b, n, m, workers int, hitRate float64) groupPlan {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if cfg.tolerance >= MinTolerance {
		growth := 1.0
		if n > 0 {
			growth = float64(m) / float64(n)
		}
		est := math.Pow(growth, float64(cfg.iterationsOrDefault()))
		saturates := est >= float64(n)/2
		chunk := (b + workers - 1) / workers
		if saturates {
			chunk = (b + 4*workers - 1) / (4 * workers)
		}
		chunk = max(1, min(chunk, blockColumns))
		return groupPlan{
			route: routeSieved,
			chunk: chunk,
			note:  fmt.Sprintf("sieved b=%d chunk=%d sat=%t", b, chunk, saturates),
		}
	}
	if b == 1 || (b <= 2 && hitRate >= 0.5) {
		return groupPlan{route: routeFanout, chunk: 1, note: fmt.Sprintf("fanout b=%d", b)}
	}
	chunk := blockColumns
	if b <= sparse.PanelMaxCols {
		chunk = sparse.PanelMaxCols
	}
	return groupPlan{
		route: routeBlocked,
		chunk: chunk,
		note:  fmt.Sprintf("blocked b=%d chunk=%d", b, chunk),
	}
}

// iterationsOrDefault resolves the effective iteration count with the
// kernels' own default (K=5) applied, so the planner's frontier estimate
// uses the truncation depth the sweeps will actually run.
func (cfg config) iterationsOrDefault() int {
	if k := cfg.iterations(); k > 0 {
		return k
	}
	return 5
}

// hitRate is the result cache's lifetime hit fraction, the planner's
// "cache is hot" signal; 0 before any lookup.
func (e *Engine) hitRate() float64 {
	s := e.cache.snapshot()
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// batch is the shared implementation of MultiSource and BatchTopK. The
// engine state is pinned once at entry, so the whole batch answers against
// one graph epoch even while ApplyEdits streams mutations concurrently.
// tr, when non-nil, receives the planner's per-group routing notes.
func (e *Engine) batch(ctx context.Context, queries []Query, topk bool, tr *obs.Trace) []Result {
	st := e.load()
	if o := e.cfg.observer; o != nil {
		o.qBatch.Add(uint64(len(queries)))
	}
	results := make([]Result, len(queries))
	done := make([]bool, len(queries))

	finish := func(i int, scores []float64, maxErr float64, cached bool) {
		q := queries[i]
		if topk {
			results[i] = Result{
				Top:      TopK(scores, q.K, append([]int{q.Node}, q.Exclude...)...),
				Cached:   cached,
				MaxError: maxErr,
			}
		} else {
			results[i] = Result{Scores: scores, Cached: cached, MaxError: maxErr}
		}
		done[i] = true
	}

	// Phase 1: resolve each query, serve cache hits, and group the
	// blockable remainder by (kernel, parameters).
	type groupKey struct {
		kernel blockKernel
		params config
	}
	type group struct {
		eng  *Engine
		idx  []int // query indices, in order
		keys []cacheKey
	}
	groups := make(map[groupKey]*group)
	keys := make([]cacheKey, len(queries))
	engs := make([]*Engine, len(queries))
	var rest []int
	for i, q := range queries {
		eng := e
		if len(q.Opts) > 0 {
			eng = e.With(q.Opts...)
		}
		engs[i] = eng
		if err := st.checkQuery(ctx, q.Node); err != nil {
			results[i] = Result{Err: err}
			done[i] = true
			continue
		}
		key := cacheKey{
			measure: canonical(q.Measure),
			gen:     registryGeneration(),
			epoch:   st.epoch,
			layout:  st.layoutKey(),
			params:  eng.cfg.cacheParams(),
			node:    q.Node,
		}
		keys[i] = key
		if scores, maxErr, ok := eng.cacheLookup(key); ok {
			finish(i, scores, maxErr, true)
			continue
		}
		// Unknown measure names resolve to no block kernel and fall through
		// to the fan-out path, whose Lookup reports the error per query.
		kernel := blockKernelFor(builtinFor(q.Measure))
		if kernel == blockNone {
			rest = append(rest, i)
			continue
		}
		gk := groupKey{kernel: kernel, params: key.params}
		g := groups[gk]
		if g == nil {
			g = &group{eng: eng}
			groups[gk] = g
		}
		g.idx = append(g.idx, i)
		g.keys = append(g.keys, key)
	}

	// Phase 2: plan, then run, each kernel group. The planner routes a
	// group to one of three executions — blocked (exact dense SpMM, groups
	// run sequentially, the kernels fan rows out internally), sieved (the
	// approximate kernels process a chunk serially on one workspace, so
	// chunks spread across the pool — each touches a disjoint set of
	// result slots, so the writes never race), or single-source fan-out
	// (the group joins phase 3's pool) — and picks the chunk width.
	// Deduplication is per group: nodes repeated within a group compute
	// once.
	hitRate := e.hitRate()
	var planNotes []string
	for gk, g := range groups {
		// Distinct nodes in first-appearance order; queryOf[node] lists the
		// group positions wanting that node.
		var nodes []int
		queryOf := make(map[int][]int)
		for pos, i := range g.idx {
			node := queries[i].Node
			if _, seen := queryOf[node]; !seen {
				nodes = append(nodes, node)
			}
			queryOf[node] = append(queryOf[node], pos)
		}
		plan := planGroup(g.eng.cfg, len(nodes), st.g.N(), st.g.M(), e.cfg.workers, hitRate)
		if tr != nil {
			planNotes = append(planNotes, plan.note)
		}
		if plan.route == routeFanout {
			rest = append(rest, g.idx...)
			continue
		}
		chunk := plan.chunk
		nChunks := (len(nodes) + chunk - 1) / chunk
		process := func(ci int) {
			lo, hi := ci*chunk, (ci+1)*chunk
			if hi > len(nodes) {
				hi = len(nodes)
			}
			block, maxErrs, err := g.eng.runBlock(ctx, st, gk.kernel, nodes[lo:hi])
			if err != nil {
				for _, node := range nodes[lo:hi] {
					for _, pos := range queryOf[node] {
						results[g.idx[pos]] = Result{Err: err}
						done[g.idx[pos]] = true
					}
				}
				return
			}
			for t, node := range nodes[lo:hi] {
				var maxErr float64
				if maxErrs != nil {
					maxErr = maxErrs[t]
				}
				for dup, pos := range queryOf[node] {
					scores := block[t]
					if dup > 0 {
						// Duplicate queries each own their slice; the first
						// takes the kernel's, the rest take copies.
						scores = append([]float64(nil), block[t]...)
					}
					e.cache.put(g.keys[pos], scores, maxErr)
					finish(g.idx[pos], scores, maxErr, false)
				}
			}
		}
		if plan.route == routeSieved {
			// Chunks the pool never dispatches (cancelled mid-batch) leave
			// their queries !done; the catch-all below answers them.
			par.ForEachCtx(ctx, nChunks, e.cfg.workers, process)
		} else {
			for ci := 0; ci < nChunks; ci++ {
				process(ci)
			}
		}
	}
	if tr != nil && len(planNotes) > 0 {
		// The group map iterates in random order; sort for a stable trace.
		sort.Strings(planNotes)
		tr.Plan = strings.Join(planNotes, "; ")
	}

	// Phase 3: fan the unblockable remainder across the worker pool. Like
	// the blocked path, duplicate queries (same cache key) compute once:
	// one representative per key runs, the rest share its result.
	dup := make(map[cacheKey][]int)
	var uniq []int
	for _, i := range rest {
		if _, seen := dup[keys[i]]; !seen {
			uniq = append(uniq, i)
		}
		dup[keys[i]] = append(dup[keys[i]], i)
	}
	par.ForEachCtx(ctx, len(uniq), e.cfg.workers, func(j int) {
		i := uniq[j]
		// count=false: the whole batch was counted under kind=batch above.
		scores, maxErr, cached, err := engs[i].singleSourceObs(ctx, st, queries[i].Measure, queries[i].Node, false, nil)
		for d, ii := range dup[keys[i]] {
			switch {
			case err != nil:
				results[ii] = Result{Err: err}
				done[ii] = true
			case d == 0:
				finish(ii, scores, maxErr, cached)
			default:
				finish(ii, append([]float64(nil), scores...), maxErr, cached)
			}
		}
	})

	// Queries the pool never dispatched (cancelled mid-batch) still owe the
	// caller an answer.
	for i := range results {
		if !done[i] {
			results[i] = Result{Err: ctx.Err()}
		}
	}
	return results
}

// runBlock answers one chunk of same-kernel, same-parameter queries over
// the pinned state's cached structures: sieved-approximate multi-source
// kernels (shared workspace, per-query MaxError certificates) when the
// group's parameters carry an effective tolerance, the blocked dense
// multi-source kernels otherwise. Under WithRelabeling the block runs on
// the permuted operators — query nodes are translated in, every result
// column is translated back out, so callers always see external ids. The
// maxErrs slice is nil on the exact paths — every query in the block is
// then certified at 0.
func (e *Engine) runBlock(ctx context.Context, st *engineState, kernel blockKernel, nodes []int) (block [][]float64, maxErrs []float64, err error) {
	ctx, cancel := e.cfg.deadlineCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	defer func() {
		if err != nil {
			e.cfg.observer.observeCancel(ctx, err)
		}
	}()
	defer e.recoverKernel(&err)
	e.cfg.fireFault(FaultPointKernel)
	if st.layout != nil {
		internal := make([]int, len(nodes))
		for i, q := range nodes {
			internal[i] = int(st.layout.perm[q])
		}
		nodes = internal
	}
	block, maxErrs, err = e.runBlockKernel(ctx, st, kernel, nodes)
	if err != nil || st.layout == nil {
		return block, maxErrs, err
	}
	ws := st.getWS()
	defer st.putWS(ws)
	for _, col := range block {
		st.externalize(col, ws)
	}
	return block, maxErrs, nil
}

// runBlockKernel dispatches one chunk to its kernel in the state's layout.
// Under WithParallelSweeps(n > 1) the chunk borrows a sweeper, so its sweeps
// — sparse scatters on the sieved paths, dense SpMM panels on the blocked
// ones — fan out at exactly the configured width; otherwise the blocked
// kernels keep their own internal all-core row fan-out (the default) and
// the sieved kernels run serially per chunk.
func (e *Engine) runBlockKernel(ctx context.Context, st *engineState, kernel blockKernel, nodes []int) ([][]float64, []float64, error) {
	sw := st.sweeperFor(e.cfg)
	if sw != nil {
		defer st.putSweeper(sw)
	}
	if tol := e.cfg.tolerance; tol >= MinTolerance {
		switch kernel {
		case blockGeometric:
			backwardT, _ := st.kernelTransposed()
			opt := e.cfg.coreOptions()
			opt.Parallel = sw
			return core.ApproxMultiSourceGeometricFromTransition(ctx, st.kernelBackward(), backwardT, nodes, tol, opt)
		case blockExponential:
			backwardT, _ := st.kernelTransposed()
			opt := e.cfg.coreOptions()
			opt.Parallel = sw
			return core.ApproxMultiSourceExponentialFromTransition(ctx, st.kernelBackward(), backwardT, nodes, tol, opt)
		case blockRWR:
			opt := e.cfg.rwrOptions()
			opt.Parallel = sw
			return rwr.ApproxMultiSourceFromTransition(ctx, st.kernelForward(), nodes, tol, opt)
		}
		panic("simstar: unreachable block kernel")
	}
	var backwardT, forwardT *sparse.CSR
	switch kernel {
	case blockGeometric, blockExponential:
		backwardT, _ = st.kernelTransposed()
	case blockRWR:
		_, forwardT = st.kernelTransposed()
	}
	switch kernel {
	case blockGeometric:
		opt := e.cfg.coreOptions()
		opt.Parallel = sw
		scores, err := core.MultiSourceGeometricFromTransition(ctx, st.kernelBackward(), backwardT, nodes, opt)
		return scores, nil, err
	case blockExponential:
		opt := e.cfg.coreOptions()
		opt.Parallel = sw
		scores, err := core.MultiSourceExponentialFromTransition(ctx, st.kernelBackward(), backwardT, nodes, opt)
		return scores, nil, err
	case blockRWR:
		opt := e.cfg.rwrOptions()
		opt.Parallel = sw
		scores, err := rwr.MultiSourceFromTransition(ctx, st.kernelForward(), forwardT, nodes, opt)
		return scores, nil, err
	}
	panic("simstar: unreachable block kernel")
}
