package simstar

import (
	"context"
	"runtime"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rwr"
	"repro/internal/sparse"
)

// Query is one single-source unit of work in a batch. The zero value of the
// optional fields means "use the engine's defaults": no per-query option
// overrides, no exclusions, and — for BatchTopK — K <= 0 yields an empty
// ranking, per the TopK boundary contract.
type Query struct {
	// Measure is the registry name (or alias) of the measure to run.
	Measure string
	// Node is the query node.
	Node int
	// K is the ranking size for BatchTopK; MultiSource ignores it.
	K int
	// Exclude lists nodes to drop from a BatchTopK ranking, in addition to
	// the query node itself; MultiSource ignores it.
	Exclude []int
	// Opts are layered on top of the engine's options for this query only,
	// exactly as Engine.With would apply them (so structure-shaping options
	// like WithMiner do not re-mine; see Engine.With).
	Opts []Option
}

// Result is the outcome of one Query in a batch. Results are positional:
// the i-th Result answers the i-th Query. Exactly one of Scores/Top is
// populated on success — Scores by MultiSource, Top by BatchTopK — and Err
// is non-nil otherwise. One query failing never fails its batch.
type Result struct {
	// Scores is the full score vector of the query node against every node
	// (MultiSource only). The slice is the caller's to keep and mutate.
	Scores []float64
	// Top is the ranked result (BatchTopK only).
	Top []Ranked
	// Cached reports whether the underlying score vector was served from
	// the engine's result cache rather than computed.
	Cached bool
	// MaxError is the certified element-wise bound on how far the
	// underlying score vector can be from the exact kernels at the query's
	// parameters: 0 for exact queries, at most the configured tolerance for
	// sieved-approximate ones (see WithTolerance).
	MaxError float64
	// Err is the per-query error: an unknown measure, an out-of-range
	// node, or ctx's error for queries cancelled or skipped mid-batch.
	Err error
}

// Stream adapts a BatchTopK Result into the lazy iterator form, carrying
// the result's Cached flag and MaxError certificate. The stream aliases
// Top — it is a view, not a copy — so a consumer can hand batch answers to
// the same sink that consumes Engine.TopKStream. A failed or MultiSource
// result streams zero entries.
func (r *Result) Stream() *TopKStream {
	return &TopKStream{ranked: r.Top, maxErr: r.MaxError, cached: r.Cached}
}

// MultiSource answers a batch of single-source queries, sharing work three
// ways no serial loop of SingleSource calls can:
//
//   - Cache first: queries answered recently come straight from the
//     engine's result cache, and duplicate queries inside one batch are
//     computed once.
//   - Blocked kernels: queries on the same measure family with the same
//     parameters (SimRank* geometric/exponential and RWR — the measures
//     with native single-source forms) are stacked into n×B blocks and
//     answered by one blocked sweep per iteration over the cached
//     transition structure, instead of one sweep per query.
//   - Fan-out: everything else is spread across a worker pool (WithWorkers
//     bounds it; the default is one worker per CPU), dispatching queries
//     from a shared counter so one expensive query does not serialise a
//     chunk of the batch behind it.
//
// Each query may carry Opts overriding the engine's parameters for that
// query alone. Cancellation is two-level: ctx aborts the kernels of queries
// already running (they return ctx's error in their Result) and stops
// undispatched queries from starting, which report ctx's error likewise.
// The returned slice always has len(queries) entries, in query order, and
// every entry's scores are identical to what SingleSource returns for that
// query — batching changes the cost, never the answer.
func (e *Engine) MultiSource(ctx context.Context, queries []Query) []Result {
	return e.batch(ctx, queries, false)
}

// BatchTopK is MultiSource for ranked queries: it answers each Query with
// the Query.K nodes most similar to Query.Node under Query.Measure,
// excluding the query node and Query.Exclude, with ties broken by node id.
// Boundary semantics per query follow TopK: K <= 0 yields an empty Top,
// K larger than the candidate count yields every candidate.
func (e *Engine) BatchTopK(ctx context.Context, queries []Query) []Result {
	return e.batch(ctx, queries, true)
}

// blockColumns caps the width of one blocked-kernel invocation. Each column
// costs the kernel O(K·n) floats of workspace — the same transient footprint
// as one single-source query — so the cap bounds batch memory at roughly 64
// in-flight queries' worth regardless of batch size.
const blockColumns = 64

// blockKernel names a blocked multi-source kernel.
type blockKernel int

const (
	blockNone blockKernel = iota
	blockGeometric
	blockExponential
	blockRWR
)

// blockKernelFor maps a resolved built-in measure to its blocked kernel.
// The memo variants share the iterative single-source fast path (see
// Engine.SingleSource), so they block identically.
func blockKernelFor(builtin string) blockKernel {
	switch builtin {
	case MeasureGeometric, MeasureGeometricMemo:
		return blockGeometric
	case MeasureExponential, MeasureExponentialMemo:
		return blockExponential
	case MeasureRWR:
		return blockRWR
	}
	return blockNone
}

// batch is the shared implementation of MultiSource and BatchTopK. The
// engine state is pinned once at entry, so the whole batch answers against
// one graph epoch even while ApplyEdits streams mutations concurrently.
func (e *Engine) batch(ctx context.Context, queries []Query, topk bool) []Result {
	st := e.load()
	if o := e.cfg.observer; o != nil {
		o.qBatch.Add(uint64(len(queries)))
	}
	results := make([]Result, len(queries))
	done := make([]bool, len(queries))

	finish := func(i int, scores []float64, maxErr float64, cached bool) {
		q := queries[i]
		if topk {
			results[i] = Result{
				Top:      TopK(scores, q.K, append([]int{q.Node}, q.Exclude...)...),
				Cached:   cached,
				MaxError: maxErr,
			}
		} else {
			results[i] = Result{Scores: scores, Cached: cached, MaxError: maxErr}
		}
		done[i] = true
	}

	// Phase 1: resolve each query, serve cache hits, and group the
	// blockable remainder by (kernel, parameters).
	type groupKey struct {
		kernel blockKernel
		params config
	}
	type group struct {
		eng  *Engine
		idx  []int // query indices, in order
		keys []cacheKey
	}
	groups := make(map[groupKey]*group)
	keys := make([]cacheKey, len(queries))
	engs := make([]*Engine, len(queries))
	var rest []int
	for i, q := range queries {
		eng := e
		if len(q.Opts) > 0 {
			eng = e.With(q.Opts...)
		}
		engs[i] = eng
		if err := st.checkQuery(ctx, q.Node); err != nil {
			results[i] = Result{Err: err}
			done[i] = true
			continue
		}
		key := cacheKey{
			measure: canonical(q.Measure),
			gen:     registryGeneration(),
			epoch:   st.epoch,
			layout:  st.layoutKey(),
			params:  eng.cfg.cacheParams(),
			node:    q.Node,
		}
		keys[i] = key
		if scores, maxErr, ok := eng.cacheLookup(key); ok {
			finish(i, scores, maxErr, true)
			continue
		}
		// Unknown measure names resolve to no block kernel and fall through
		// to the fan-out path, whose Lookup reports the error per query.
		kernel := blockKernelFor(builtinFor(q.Measure))
		if kernel == blockNone {
			rest = append(rest, i)
			continue
		}
		gk := groupKey{kernel: kernel, params: key.params}
		g := groups[gk]
		if g == nil {
			g = &group{eng: eng}
			groups[gk] = g
		}
		g.idx = append(g.idx, i)
		g.keys = append(g.keys, key)
	}

	// Phase 2: one blocked run per group, deduplicating nodes repeated
	// within the group and chunked to bound workspace memory. The exact
	// blocked kernels are row-parallel internally, so their groups run
	// sequentially; the sieved approximate kernels process a chunk serially
	// on one workspace, so approximate groups instead split into per-worker
	// chunks and spread across the pool — each chunk touches a disjoint set
	// of result slots, so the writes never race.
	for gk, g := range groups {
		// Distinct nodes in first-appearance order; queryOf[node] lists the
		// group positions wanting that node.
		var nodes []int
		queryOf := make(map[int][]int)
		for pos, i := range g.idx {
			node := queries[i].Node
			if _, seen := queryOf[node]; !seen {
				nodes = append(nodes, node)
			}
			queryOf[node] = append(queryOf[node], pos)
		}
		approx := g.eng.cfg.tolerance >= MinTolerance
		chunk := blockColumns
		if approx {
			workers := e.cfg.workers
			if workers <= 0 {
				workers = runtime.NumCPU()
			}
			if chunk = (len(nodes) + workers - 1) / workers; chunk > blockColumns {
				chunk = blockColumns
			}
		}
		nChunks := (len(nodes) + chunk - 1) / chunk
		process := func(ci int) {
			lo, hi := ci*chunk, (ci+1)*chunk
			if hi > len(nodes) {
				hi = len(nodes)
			}
			block, maxErrs, err := g.eng.runBlock(ctx, st, gk.kernel, nodes[lo:hi])
			if err != nil {
				for _, node := range nodes[lo:hi] {
					for _, pos := range queryOf[node] {
						results[g.idx[pos]] = Result{Err: err}
						done[g.idx[pos]] = true
					}
				}
				return
			}
			for t, node := range nodes[lo:hi] {
				var maxErr float64
				if maxErrs != nil {
					maxErr = maxErrs[t]
				}
				for dup, pos := range queryOf[node] {
					scores := block[t]
					if dup > 0 {
						// Duplicate queries each own their slice; the first
						// takes the kernel's, the rest take copies.
						scores = append([]float64(nil), block[t]...)
					}
					e.cache.put(g.keys[pos], scores, maxErr)
					finish(g.idx[pos], scores, maxErr, false)
				}
			}
		}
		if approx {
			// Chunks the pool never dispatches (cancelled mid-batch) leave
			// their queries !done; the catch-all below answers them.
			par.ForEachCtx(ctx, nChunks, e.cfg.workers, process)
		} else {
			for ci := 0; ci < nChunks; ci++ {
				process(ci)
			}
		}
	}

	// Phase 3: fan the unblockable remainder across the worker pool. Like
	// the blocked path, duplicate queries (same cache key) compute once:
	// one representative per key runs, the rest share its result.
	dup := make(map[cacheKey][]int)
	var uniq []int
	for _, i := range rest {
		if _, seen := dup[keys[i]]; !seen {
			uniq = append(uniq, i)
		}
		dup[keys[i]] = append(dup[keys[i]], i)
	}
	par.ForEachCtx(ctx, len(uniq), e.cfg.workers, func(j int) {
		i := uniq[j]
		// count=false: the whole batch was counted under kind=batch above.
		scores, maxErr, cached, err := engs[i].singleSourceObs(ctx, st, queries[i].Measure, queries[i].Node, false, nil)
		for d, ii := range dup[keys[i]] {
			switch {
			case err != nil:
				results[ii] = Result{Err: err}
				done[ii] = true
			case d == 0:
				finish(ii, scores, maxErr, cached)
			default:
				finish(ii, append([]float64(nil), scores...), maxErr, cached)
			}
		}
	})

	// Queries the pool never dispatched (cancelled mid-batch) still owe the
	// caller an answer.
	for i := range results {
		if !done[i] {
			results[i] = Result{Err: ctx.Err()}
		}
	}
	return results
}

// runBlock answers one chunk of same-kernel, same-parameter queries over
// the pinned state's cached structures: sieved-approximate multi-source
// kernels (shared workspace, per-query MaxError certificates) when the
// group's parameters carry an effective tolerance, the blocked dense
// multi-source kernels otherwise. Under WithRelabeling the block runs on
// the permuted operators — query nodes are translated in, every result
// column is translated back out, so callers always see external ids. The
// maxErrs slice is nil on the exact paths — every query in the block is
// then certified at 0.
func (e *Engine) runBlock(ctx context.Context, st *engineState, kernel blockKernel, nodes []int) ([][]float64, []float64, error) {
	if st.layout != nil {
		internal := make([]int, len(nodes))
		for i, q := range nodes {
			internal[i] = int(st.layout.perm[q])
		}
		nodes = internal
	}
	block, maxErrs, err := e.runBlockKernel(ctx, st, kernel, nodes)
	if err != nil || st.layout == nil {
		return block, maxErrs, err
	}
	ws := st.getWS()
	defer st.putWS(ws)
	for _, col := range block {
		st.externalize(col, ws)
	}
	return block, maxErrs, nil
}

// runBlockKernel dispatches one chunk to its kernel in the state's layout.
func (e *Engine) runBlockKernel(ctx context.Context, st *engineState, kernel blockKernel, nodes []int) ([][]float64, []float64, error) {
	if tol := e.cfg.tolerance; tol >= MinTolerance {
		switch kernel {
		case blockGeometric:
			backwardT, _ := st.kernelTransposed()
			return core.ApproxMultiSourceGeometricFromTransition(ctx, st.kernelBackward(), backwardT, nodes, tol, e.cfg.coreOptions())
		case blockExponential:
			backwardT, _ := st.kernelTransposed()
			return core.ApproxMultiSourceExponentialFromTransition(ctx, st.kernelBackward(), backwardT, nodes, tol, e.cfg.coreOptions())
		case blockRWR:
			return rwr.ApproxMultiSourceFromTransition(ctx, st.kernelForward(), nodes, tol, e.cfg.rwrOptions())
		}
		panic("simstar: unreachable block kernel")
	}
	var backwardT, forwardT *sparse.CSR
	switch kernel {
	case blockGeometric, blockExponential:
		backwardT, _ = st.kernelTransposed()
	case blockRWR:
		_, forwardT = st.kernelTransposed()
	}
	switch kernel {
	case blockGeometric:
		scores, err := core.MultiSourceGeometricFromTransition(ctx, st.kernelBackward(), backwardT, nodes, e.cfg.coreOptions())
		return scores, nil, err
	case blockExponential:
		scores, err := core.MultiSourceExponentialFromTransition(ctx, st.kernelBackward(), backwardT, nodes, e.cfg.coreOptions())
		return scores, nil, err
	case blockRWR:
		scores, err := rwr.MultiSourceFromTransition(ctx, st.kernelForward(), forwardT, nodes, e.cfg.rwrOptions())
		return scores, nil, err
	}
	panic("simstar: unreachable block kernel")
}
