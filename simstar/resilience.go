package simstar

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// This file is the engine's resilience surface: per-query deadline budgets
// (WithDeadline), fault-injection hooks (WithFaultHook), and kernel panic
// isolation. The contract across all three: a query may run slower, abort
// with context.DeadlineExceeded, or fail with an ErrKernelPanic-wrapped
// error — but a completed query always returns the same scores an
// unperturbed run would have, and a kernel panic never escapes the engine
// as a process crash.

// ErrKernelPanic marks a query that failed because a kernel panicked
// mid-run — a bug, a corrupted operand, or an injected fault — and the
// engine isolated the crash instead of letting it take the process down.
// Callers test with errors.Is; the wrapped message carries the panic value.
// The engine's caches and pooled workspaces stay consistent across a
// recovered panic (workspace pools simply lose the in-flight loan), so the
// engine keeps serving.
var ErrKernelPanic = errors.New("simstar: kernel panic")

// FaultPointKernel is the fault site name the engine reports to WithFaultHook
// callbacks at each kernel entry — single-source, top-k stream, and blocked
// batch chunks alike. An Injector's Hook derives its trigger points from it
// ("kernel.slow", "kernel.panic").
const FaultPointKernel = "kernel"

// HasCertifiedPath reports whether the named measure has a threshold-sieved
// approximate fast path under WithTolerance — one whose results carry a
// machine-checkable MaxError certificate. An overload governor uses this to
// decide which queries can degrade to approximate answers without losing
// the exactness contract silently; measures without a certified path ignore
// WithTolerance and always answer exactly.
func HasCertifiedPath(measureName string) bool {
	return fastPathKernel(builtinFor(measureName))
}

// deadlineCtx applies cfg's WithDeadline budget to ctx: a derived timeout
// context when a budget is configured, ctx unchanged (and a nil cancel)
// otherwise. Callers guard the nil cancel, which keeps the no-deadline
// serving paths allocation-free.
func (cfg config) deadlineCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if cfg.deadline <= 0 {
		return ctx, nil
	}
	return context.WithTimeout(ctx, cfg.deadline)
}

// fireFault invokes the WithFaultHook callback at a fault site; one nil
// check when no hook is installed.
func (cfg config) fireFault(site string) {
	if h := cfg.fault; h != nil {
		h.fn(site)
	}
}

// recoverKernel is the engine's panic isolation boundary, installed with
// `defer e.recoverKernel(&err)` on every kernel-running serving path (a
// direct method defer, so the //simstar:noalloc paths can afford it — no
// closure). A recovered panic becomes an ErrKernelPanic-wrapped error in
// *errp; everything else about the query's named returns stays zero.
func (e *Engine) recoverKernel(errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("%w: %v", ErrKernelPanic, r)
	}
}

// safeComputeSingleSource runs computeSingleSource behind the fault hook
// and the panic isolation boundary — the allocating single-source read
// path's kernel step.
func (e *Engine) safeComputeSingleSource(ctx context.Context, st *engineState, measureName string, q int, kt *obs.KernelTrace) (scores []float64, maxErr float64, err error) {
	defer e.recoverKernel(&err)
	e.cfg.fireFault(FaultPointKernel)
	return e.computeSingleSource(ctx, st, measureName, q, kt)
}
