package simstar_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/simstar"
)

// Engine queries must return exactly what the standalone measures return —
// the cache changes the cost, never the answer.
func TestEngineMatchesMeasures(t *testing.T) {
	g := toyGraph(t)
	opts := []simstar.Option{simstar.WithC(0.6), simstar.WithK(5)}
	eng := simstar.NewEngine(g, opts...)
	for _, name := range []string{
		simstar.MeasureGeometric, simstar.MeasureGeometricMemo,
		simstar.MeasureExponential, simstar.MeasureExponentialMemo,
		simstar.MeasureSimRank, simstar.MeasureSimRankMatrix,
		simstar.MeasurePRank, simstar.MeasureRWR, simstar.MeasureSparse,
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			m, err := simstar.Lookup(name, opts...)
			if err != nil {
				t.Fatal(err)
			}
			wantAll, err := m.AllPairs(ctx, g)
			if err != nil {
				t.Fatal(err)
			}
			gotAll, err := eng.AllPairs(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < g.N(); i++ {
				for j := 0; j < g.N(); j++ {
					if d := math.Abs(gotAll.At(i, j) - wantAll.At(i, j)); d > 1e-12 {
						t.Fatalf("AllPairs(%d,%d) differs by %g", i, j, d)
					}
				}
			}
			want, err := m.SingleSource(ctx, g, 1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.SingleSource(ctx, name, 1)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if d := math.Abs(got[j] - want[j]); d > 1e-12 {
					t.Fatalf("SingleSource[%d] differs by %g", j, d)
				}
			}
		})
	}
}

func TestEngineTopK(t *testing.T) {
	g := toyGraph(t)
	eng := simstar.NewEngine(g, simstar.WithK(8))
	ctx := context.Background()
	q, _ := g.NodeByLabel("followup1")
	top, err := eng.TopK(ctx, simstar.MeasureGeometric, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("got %d results, want 3", len(top))
	}
	scores, _ := eng.SingleSource(ctx, simstar.MeasureGeometric, q)
	want := simstar.TopK(scores, 3, q)
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK[%d] = %+v, want %+v", i, top[i], want[i])
		}
	}
	for _, r := range top {
		if r.Node == q {
			t.Fatal("TopK must exclude the query node")
		}
	}
	// Exclusions drop the named nodes from the ranking.
	ex := want[0].Node
	top2, err := eng.TopK(ctx, simstar.MeasureGeometric, q, 3, ex)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range top2 {
		if r.Node == ex {
			t.Fatalf("excluded node %d present in result", ex)
		}
	}
}

// The engine must serve concurrent queries off its shared caches: same
// answers under contention as alone.
func TestEngineConcurrentQueries(t *testing.T) {
	g := toyGraph(t)
	eng := simstar.NewEngine(g, simstar.WithK(6))
	ctx := context.Background()
	names := []string{
		simstar.MeasureGeometric, simstar.MeasureGeometricMemo,
		simstar.MeasureExponential, simstar.MeasureRWR,
	}
	want := make(map[string][]float64)
	for _, name := range names {
		row, err := eng.SingleSource(ctx, name, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = row
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 16; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := names[w%len(names)]
			for rep := 0; rep < 4; rep++ {
				got, err := eng.SingleSource(ctx, name, 0)
				if err != nil {
					errc <- err
					return
				}
				for j := range got {
					if got[j] != want[name][j] {
						errc <- errors.New("concurrent result differs from serial result")
						return
					}
				}
				if _, err := eng.AllPairs(ctx, name); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestEngineCancellation(t *testing.T) {
	g := toyGraph(t)
	eng := simstar.NewEngine(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("SingleSource error = %v, want context.Canceled", err)
	}
	if _, err := eng.AllPairs(ctx, simstar.MeasureRWR); !errors.Is(err, context.Canceled) {
		t.Fatalf("AllPairs error = %v, want context.Canceled", err)
	}
	if _, err := eng.TopK(ctx, simstar.MeasureGeometric, 0, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopK error = %v, want context.Canceled", err)
	}
}

func TestEngineStats(t *testing.T) {
	g := toyGraph(t)
	eng := simstar.NewEngine(g)
	st := eng.Stats()
	if st.Nodes != g.N() || st.Edges != g.M() {
		t.Fatalf("stats %+v disagree with graph n=%d m=%d", st, g.N(), g.M())
	}
	if st.CompressedEdges <= 0 || st.CompressedEdges > st.Edges {
		t.Fatalf("compressed edges %d out of range (m=%d)", st.CompressedEdges, st.Edges)
	}
	if eng.Graph() != g {
		t.Fatal("Graph() must return the served graph")
	}
}

// Re-registering a built-in name must override the engine fast path too:
// the same name may not give different implementations depending on
// whether the caller goes through Lookup or an Engine.
func TestEngineHonoursRegistryOverride(t *testing.T) {
	const name = "test-override-rwr"
	simstar.Register(name, func(opts ...simstar.Option) simstar.Measure {
		return constantMeasure{}
	})
	simstar.RegisterAlias("test-override-alias", name)
	g := toyGraph(t)
	eng := simstar.NewEngine(g)
	for _, query := range []string{name, "test-override-alias"} {
		row, err := eng.SingleSource(context.Background(), query, 0)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] != 1 {
			t.Fatalf("%q: engine served %g, want the override's constant 1", query, row[0])
		}
	}
}

func TestEngineRejectsBadQueries(t *testing.T) {
	g := toyGraph(t)
	eng := simstar.NewEngine(g)
	ctx := context.Background()
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, -1); err == nil {
		t.Fatal("want error for negative query node")
	}
	if _, err := eng.SingleSource(ctx, "no-such-measure", 0); err == nil {
		t.Fatal("want error for unknown measure")
	}
	if _, err := eng.AllPairs(ctx, "no-such-measure"); err == nil {
		t.Fatal("want error for unknown measure")
	}
}
