package simstar

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rwr"
)

// streamScratch is the pooled per-query scratch of the streaming top-k fast
// path: one kernel-sized score buffer and a reusable exclusion list. Pooled
// separately from the kernel workspaces because the kernels Reset their
// workspace internally — the score vector under selection must live
// elsewhere.
type streamScratch struct {
	scores  []float64
	exclude []int
}

// getStream borrows a streaming scratch from the state's pool; putStream
// returns it.
func (st *engineState) getStream() *streamScratch   { return st.streamPool.Get().(*streamScratch) }
func (st *engineState) putStream(sc *streamScratch) { st.streamPool.Put(sc) }

// TopKStream is a lazily-consumed top-k result: the k selected entries,
// already in final order (score descending, ties by ascending node id),
// handed out one at a time. The entries are identical — order, scores,
// tie-breaks — to what Engine.TopK returns for the same query; only the
// production differs: on the exact fast-path measures the stream never
// materialises a per-query O(n) score vector, so a consumer wanting k=10 of
// a million-node graph holds 10 entries, not a million scores.
//
// A stream is single-consumer and not safe for concurrent use. It probes
// the engine's result cache on creation but never populates it (caching
// would mean keeping the full vector the stream exists to avoid); see
// ARCHITECTURE.md for the lifecycle.
type TopKStream struct {
	ranked []Ranked
	pos    int
	maxErr float64
	cached bool
}

// Next returns the next entry best-first, and false once the stream is
// drained.
func (s *TopKStream) Next() (Ranked, bool) {
	if s.pos >= len(s.ranked) {
		return Ranked{}, false
	}
	r := s.ranked[s.pos]
	s.pos++
	return r, true
}

// Len reports the total number of entries the stream was created with,
// consumed or not.
func (s *TopKStream) Len() int { return len(s.ranked) }

// MaxError is the certified element-wise bound on how far the underlying
// scores can be from the exact kernels at the query's parameters: 0 for
// exact queries, at most the configured tolerance under WithTolerance.
func (s *TopKStream) MaxError() float64 { return s.maxErr }

// Cached reports whether the underlying scores came from the engine's
// result cache rather than a kernel run.
func (s *TopKStream) Cached() bool { return s.cached }

// Collect drains the remaining entries into a slice. The returned slice
// aliases the stream's storage; it is the caller's once the stream is
// abandoned.
func (s *TopKStream) Collect() []Ranked {
	r := s.ranked[s.pos:]
	s.pos = len(s.ranked)
	return r
}

// TopKStream answers the same query as Engine.TopK — the k nodes most
// similar to q under the named measure, excluding q and any nodes in exclude
// — as a lazy stream. For the exact fast-path measures (geometric and
// exponential SimRank*, their memo variants, and RWR) the kernel sweeps a
// pooled score buffer and bounded selection builds only the k result
// entries, so a warmed engine allocates O(k) per call — independent of the
// node count — instead of the O(n) vector TopK's SingleSource path returns.
// Other measures, and engines configured with WithTolerance, fall back to
// the materialising path and stream its selection.
//
// Streams probe the result cache (a SingleSource of the same query makes
// the stream a hit) but never populate it. Entries, order and tie-breaks
// are always identical to Engine.TopK at the same parameters.
func (e *Engine) TopKStream(ctx context.Context, measureName string, q, k int, exclude ...int) (_ *TopKStream, err error) {
	st := e.load()
	o := e.cfg.observer
	if o != nil {
		o.qStream.Inc()
	}
	if err := st.checkQuery(ctx, q); err != nil {
		return nil, err
	}
	builtin := builtinFor(measureName)
	if !fastPathKernel(builtin) || e.cfg.tolerance >= MinTolerance {
		// count=false: already counted under kind=stream above. The slow path
		// carries the deadline, fault and panic-isolation wrapping itself.
		scores, maxErr, cached, err := e.singleSourceObs(ctx, st, measureName, q, false, nil)
		if err != nil {
			return nil, err
		}
		top := TopK(scores, k, append([]int{q}, exclude...)...)
		return &TopKStream{ranked: top, maxErr: maxErr, cached: cached}, nil
	}
	ctx, cancel := e.cfg.deadlineCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	defer func() {
		if err != nil {
			o.observeCancel(ctx, err)
		}
	}()
	defer e.recoverKernel(&err)
	key := cacheKey{
		measure: canonical(measureName),
		gen:     registryGeneration(),
		epoch:   st.epoch,
		layout:  st.layoutKey(),
		params:  e.cfg.cacheParams(),
		node:    q,
	}
	if scores, maxErr, ok := e.cacheLookup(key); ok {
		top := TopK(scores, k, append([]int{q}, exclude...)...)
		return &TopKStream{ranked: top, maxErr: maxErr, cached: true}, nil
	}

	sc := st.getStream()
	defer st.putStream(sc)
	ws := st.getWS()
	defer st.putWS(ws)
	sw := st.sweeperFor(e.cfg)
	if sw != nil {
		defer st.putSweeper(sw)
	}

	sc.exclude = append(sc.exclude[:0], q)
	sc.exclude = append(sc.exclude, exclude...)
	kk := min(max(k, 0), st.g.N())
	// dst is the stream's storage — freshly allocated (never pooled: it
	// outlives this call inside the returned stream), sized so TopKInto
	// fills it without growing.
	dst := make([]Ranked, 0, kk)

	// The stream fast path borrows the workspace-resident kernel trace like
	// SingleSourceInto does, so observed streams stay O(k)-allocating.
	var kt *obs.KernelTrace
	if o != nil {
		kt = &ws.Trace
		kt.Reset()
	}
	start := time.Now()
	e.cfg.fireFault(FaultPointKernel)

	var top []Ranked
	if st.layout == nil {
		// Kernel order is external order: fuse selection into the kernel
		// call, skipping the full-vector staging entirely.
		switch builtin {
		case MeasureGeometric, MeasureGeometricMemo:
			opt := e.cfg.coreOptions()
			opt.Trace = kt
			if sw != nil {
				opt.Parallel = sw
				opt.Transposed, _ = st.kernelTransposed()
			}
			top, err = core.SingleSourceGeometricTopKWS(ctx, st.kernelBackward(), q, kk, opt, ws, sc.scores, dst, sc.exclude...)
		case MeasureExponential, MeasureExponentialMemo:
			opt := e.cfg.coreOptions()
			opt.Trace = kt
			if sw != nil {
				opt.Parallel = sw
				opt.Transposed, _ = st.kernelTransposed()
			}
			top, err = core.SingleSourceExponentialTopKWS(ctx, st.kernelBackward(), q, kk, opt, ws, sc.scores, dst, sc.exclude...)
		case MeasureRWR:
			opt := e.cfg.rwrOptions()
			opt.Trace = kt
			if sw != nil {
				opt.Parallel = sw
				_, opt.Transposed = st.kernelTransposed()
			}
			top, err = rwr.SingleSourceTopKWS(ctx, st.kernelForward(), q, kk, opt, ws, sc.scores, dst, sc.exclude...)
		}
	} else {
		// Under relabeling the tie-break is defined on external ids, so the
		// vector must be back in external order before selection.
		if err = e.exactSingleSourceInto(ctx, st, builtin, st.toInternal(q), ws, sw, sc.scores, kt); err == nil {
			st.externalize(sc.scores, ws)
			top = core.TopKInto(sc.scores, kk, dst, sc.exclude...)
		}
	}
	if err != nil {
		return nil, err
	}
	if o != nil {
		o.recordKernel(kt, time.Since(start))
	}
	return &TopKStream{ranked: top}, nil
}
