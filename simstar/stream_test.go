package simstar_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/simstar"
)

// streamGraph is a deterministic ~24-node digraph with hubs, chains and
// plenty of equal-score candidates, so tie-breaking is actually exercised.
func streamGraph(t testing.TB) *simstar.Graph {
	t.Helper()
	const n = 24
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
		if i%2 == 0 {
			edges = append(edges, [2]int{i, 0}) // hub: many identical in-profiles
		}
		if i%3 == 0 {
			edges = append(edges, [2]int{i, (i + n/2) % n})
		}
	}
	return simstar.GraphFromEdges(n, edges)
}

func rankedSliceEqual(a, b []simstar.Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The streaming contract: for every registered measure, under exact,
// tolerance-certified and relabeled configurations, TopKStream yields
// entries bitwise-identical — order, scores, tie-breaks — to materialized
// Engine.TopK at the same parameters.
func TestTopKStreamConformanceAllMeasures(t *testing.T) {
	g := streamGraph(t)
	ctx := context.Background()
	base := []simstar.Option{simstar.WithC(0.6), simstar.WithK(4), simstar.WithRank(6)}
	variants := []struct {
		name string
		opts []simstar.Option
	}{
		{"exact", nil},
		{"tolerance", []simstar.Option{simstar.WithTolerance(1e-3)}},
		{"relabeled", []simstar.Option{simstar.WithRelabeling(simstar.RelabelDegree)}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			eng := simstar.NewEngine(g, append(append([]simstar.Option{}, base...), v.opts...)...)
			for _, name := range simstar.Names() {
				name := name
				t.Run(name, func(t *testing.T) {
					for qi, q := range []int{0, 5, 13} {
						for _, k := range []int{1, 5, g.N() + 10} {
							// Alternate which path runs first, so both the
							// cold stream (kernel path) and the warm stream
							// (cache-probe path) are compared.
							var want []simstar.Ranked
							var err error
							if qi%2 == 0 {
								want, err = eng.TopK(ctx, name, q, k, 2)
								if err != nil {
									t.Fatal(err)
								}
							}
							s, err := eng.TopKStream(ctx, name, q, k, 2)
							if err != nil {
								t.Fatal(err)
							}
							if want == nil {
								want, err = eng.TopK(ctx, name, q, k, 2)
								if err != nil {
									t.Fatal(err)
								}
							}
							got := s.Collect()
							if !rankedSliceEqual(got, want) {
								t.Fatalf("q=%d k=%d: stream %v != materialized %v", q, k, got, want)
							}
							if s.Len() != len(want) {
								t.Fatalf("q=%d k=%d: Len = %d, want %d", q, k, s.Len(), len(want))
							}
						}
					}
				})
			}
		})
	}
}

// Next must hand out exactly the Collect sequence, then report drained.
func TestTopKStreamNextDrains(t *testing.T) {
	g := streamGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(4))
	want, err := eng.TopK(ctx, simstar.MeasureGeometric, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.TopKStream(ctx, simstar.MeasureGeometric, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		r, ok := s.Next()
		if !ok {
			t.Fatalf("stream drained at %d, want %d entries", i, len(want))
		}
		if r != w {
			t.Fatalf("Next()[%d] = %+v, want %+v", i, r, w)
		}
	}
	if r, ok := s.Next(); ok {
		t.Fatalf("stream overran with %+v", r)
	}
	if got := s.Collect(); len(got) != 0 {
		t.Fatalf("Collect after drain = %v, want empty", got)
	}
}

// Explicit tie-break check on a crafted vector: equal scores must stream in
// ascending node id, identically through TopK and TopKInto.
func TestTopKIntoTieBreaks(t *testing.T) {
	scores := []float64{0.25, 0.5, 0.25, 0.5, 0.25, 0.125}
	want := []simstar.Ranked{
		{Node: 1, Score: 0.5}, {Node: 3, Score: 0.5},
		{Node: 0, Score: 0.25}, {Node: 2, Score: 0.25},
	}
	got := simstar.TopKInto(scores, 4, make([]simstar.Ranked, 0, 4), 4)
	if !rankedSliceEqual(got, want) {
		t.Fatalf("TopKInto = %v, want %v", got, want)
	}
	if full := simstar.TopK(scores, 4, 4); !rankedSliceEqual(full, got) {
		t.Fatalf("TopK %v != TopKInto %v", full, got)
	}
}

// Streams probe the result cache but never populate it: a cold stream
// leaves the cache empty, and a SingleSource of the same query turns the
// next stream into a hit.
func TestTopKStreamCacheInterplay(t *testing.T) {
	g := streamGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(4))
	s, err := eng.TopKStream(ctx, simstar.MeasureGeometric, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cached() {
		t.Fatal("cold stream claims a cache hit")
	}
	if cs := eng.CacheStats(); cs.Size != 0 {
		t.Fatalf("stream populated the cache: %+v", cs)
	}
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 2); err != nil {
		t.Fatal(err)
	}
	s2, err := eng.TopKStream(ctx, simstar.MeasureGeometric, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Cached() {
		t.Fatal("stream after SingleSource of the same query should be a cache hit")
	}
	if !rankedSliceEqual(s.Collect(), s2.Collect()) {
		t.Fatal("cached and kernel streams disagree")
	}
}

// A tolerance-configured stream must carry the certificate of the
// underlying approximate result.
func TestTopKStreamCarriesMaxError(t *testing.T) {
	g := streamGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(4), simstar.WithTolerance(1e-3))
	_, wantErr, err := eng.SingleSourceCertified(ctx, simstar.MeasureGeometric, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.TopKStream(ctx, simstar.MeasureGeometric, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxError() != wantErr {
		t.Fatalf("stream MaxError = %g, want %g", s.MaxError(), wantErr)
	}
	if s.MaxError() > 1e-3 {
		t.Fatalf("certificate %g exceeds the configured tolerance", s.MaxError())
	}
	exact := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(4))
	se, err := exact.TopKStream(ctx, simstar.MeasureGeometric, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if se.MaxError() != 0 {
		t.Fatalf("exact stream MaxError = %g, want 0", se.MaxError())
	}
}

func TestTopKStreamBoundariesAndErrors(t *testing.T) {
	g := streamGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(4))
	for _, k := range []int{0, -3} {
		s, err := eng.TopKStream(ctx, simstar.MeasureGeometric, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != 0 {
			t.Fatalf("k=%d: Len = %d, want 0", k, s.Len())
		}
	}
	if _, err := eng.TopKStream(ctx, simstar.MeasureGeometric, -1, 5); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := eng.TopKStream(ctx, "no-such-measure", 0, 5); err == nil {
		t.Fatal("unknown measure accepted")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.TopKStream(cctx, simstar.MeasureGeometric, 0, 5); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// Result.Stream adapts batch answers to the iterator form, preserving
// entries and metadata.
func TestBatchResultStream(t *testing.T) {
	g := streamGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(4))
	queries := []simstar.Query{
		{Measure: simstar.MeasureGeometric, Node: 1, K: 4},
		{Measure: simstar.MeasureRWR, Node: 2, K: 3, Exclude: []int{5}},
		{Measure: "no-such-measure", Node: 0, K: 2},
	}
	results := eng.BatchTopK(ctx, queries)
	for i, r := range results {
		s := r.Stream()
		if r.Err != nil {
			if s.Len() != 0 {
				t.Fatalf("query %d: failed result streams %d entries", i, s.Len())
			}
			continue
		}
		if !rankedSliceEqual(s.Collect(), r.Top) {
			t.Fatalf("query %d: stream != Top", i)
		}
		if s.Cached() != r.Cached || s.MaxError() != r.MaxError {
			t.Fatalf("query %d: stream metadata diverges from Result", i)
		}
	}
}

// The o(n) allocation claim, asserted: a warmed cache-disabled engine must
// stream top-k with the same small constant number of allocations at two
// very different node counts — the per-query O(n) vector is pooled, not
// allocated.
func TestTopKStreamAllocsIndependentOfN(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector (sync.Pool)")
	}
	ctx := context.Background()
	allocsAt := func(n int, measure string) float64 {
		rng := rand.New(rand.NewSource(9))
		edges := make([][2]int, 0, 4*n)
		for i := 0; i < 4*n; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		eng := simstar.NewEngine(simstar.GraphFromEdges(n, edges),
			simstar.WithC(0.6), simstar.WithK(4), simstar.WithCacheSize(-1))
		// Warm the pools.
		for w := 0; w < 3; w++ {
			if _, err := eng.TopKStream(ctx, measure, w, 10); err != nil {
				t.Fatal(err)
			}
		}
		q := 0
		return testing.AllocsPerRun(30, func() {
			s, err := eng.TopKStream(ctx, measure, q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if s.Len() == 0 {
				t.Fatal("empty stream")
			}
			q = (q + 1) % 16
		})
	}
	for _, measure := range []string{simstar.MeasureGeometric, simstar.MeasureRWR} {
		small := allocsAt(512, measure)
		large := allocsAt(8192, measure)
		// The stream itself and its k-entry storage: a small constant,
		// never a function of n.
		if small > 4 || large > 4 {
			t.Fatalf("%s: allocs/op small=%v large=%v, want <= 4", measure, small, large)
		}
		if large > small {
			t.Fatalf("%s: allocs grew with n (%v -> %v)", measure, small, large)
		}
	}
}
