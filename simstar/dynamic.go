package simstar

import (
	"io"
	"time"

	"repro/internal/dyngraph"
	"repro/internal/sparse"
)

// This file is the dynamic-graph surface of the API: streamed edge
// mutations against a live Engine, versioned by epoch, with incremental
// refresh of the preprocessed structures. The write path (ApplyEdits) and
// the read path (queries) are isolated from each other — see the Engine
// doc comment and ARCHITECTURE.md for the design.

// Edit is one streamed edge mutation: an insertion or removal of a directed
// edge, identified by dense node ids. Build them with InsertEdge and
// DeleteEdge.
type Edit = dyngraph.Edit

// EditOp is the kind of an Edit: EditInsert or EditDelete.
type EditOp = dyngraph.Op

// The two edit kinds.
const (
	// EditInsert adds the edge (a no-op if it already exists).
	EditInsert EditOp = dyngraph.OpInsert
	// EditDelete removes the edge (a no-op if it does not exist).
	EditDelete EditOp = dyngraph.OpDelete
)

// InsertEdge returns an edit inserting the directed edge u→v. Inserting an
// edge whose endpoints lie past the current node range grows the graph,
// exactly as the GraphBuilder would.
func InsertEdge(u, v int) Edit { return dyngraph.Insert(u, v) }

// DeleteEdge returns an edit removing the directed edge u→v.
func DeleteEdge(u, v int) Edit { return dyngraph.Delete(u, v) }

// ReadEdits parses a mutation stream ("+ u v" / "- u v" per line, '#'
// comments) — the format cmd/gengraph -edits emits.
func ReadEdits(r io.Reader) ([]Edit, error) { return dyngraph.ReadEdits(r) }

// WriteEdits serialises a mutation stream in the format ReadEdits parses.
func WriteEdits(w io.Writer, edits []Edit) error { return dyngraph.WriteEdits(w, edits) }

// GraphSnapshot is the engine's current graph version: the immutable graph
// being served, its epoch number, and how many accepted edits are still
// pending materialisation (non-zero only under WithEpochInterval > 1).
type GraphSnapshot struct {
	// Graph is the immutable graph of the served epoch.
	Graph *Graph
	// Epoch is the version number of the served graph.
	Epoch uint64
	// Pending counts accepted edits not yet materialised into an epoch.
	Pending int
}

// EditStats reports what one ApplyEdits or Refresh call did.
type EditStats struct {
	// Epoch is the graph version being served after the call.
	Epoch uint64
	// Applied is the number of edits this call accepted into the delta log.
	Applied int
	// Pending is the number of accepted edits not yet materialised.
	Pending int
	// Inserted and Removed count the edges actually added/removed by the
	// materialisation this call triggered (0 when nothing materialised, and
	// no-op edits — inserting a present edge, deleting an absent one — are
	// never counted).
	Inserted, Removed int
	// Refreshed reports whether this call swapped in a new epoch state.
	Refreshed bool
	// RefreshTime is what the incremental state refresh cost, when
	// Refreshed: the transition-matrix splice, but not the biclique
	// re-mining, which is deferred to the first memo query of the epoch.
	RefreshTime time.Duration
	// Nodes and Edges are the size of the served graph after the call.
	Nodes, Edges int
}

// ApplyEdits streams a batch of edge mutations into the engine's versioned
// store. The batch is atomic: an invalid edit (negative node id) rejects the
// whole batch. By default every call materialises a new graph epoch and
// swaps in an incrementally-refreshed state — only transition-matrix rows
// whose neighbourhoods changed are recomputed, everything else is reused —
// after which queries (including the result cache, which keys on the epoch)
// see the new graph. Under WithEpochInterval(n) edits accumulate and
// materialise once n are pending, or on Refresh.
//
// Scores computed on the refreshed epoch are bitwise-identical to those of
// an engine built from scratch on the mutated graph, for every measure.
//
// Queries already in flight keep the epoch they started with; edits never
// block queries. Edits applied through engines derived With are visible to
// the whole family, which shares one store. Concurrent ApplyEdits calls are
// serialised internally.
func (e *Engine) ApplyEdits(edits ...Edit) (EditStats, error) {
	e.editMu.Lock()
	defer e.editMu.Unlock()
	res, err := e.store.Apply(edits)
	if err != nil {
		return EditStats{}, err
	}
	return e.finishEdits(res), nil
}

// Refresh materialises any pending edits into a new epoch immediately,
// regardless of the epoch interval. With nothing pending it is a no-op.
func (e *Engine) Refresh() (EditStats, error) {
	e.editMu.Lock()
	defer e.editMu.Unlock()
	res, err := e.store.Flush()
	if err != nil {
		return EditStats{}, err
	}
	return e.finishEdits(res), nil
}

// finishEdits swaps in the refreshed state for a materialised store result
// and assembles the stats. Caller holds editMu, so the loaded state is
// exactly the snapshot the delta was spliced against.
func (e *Engine) finishEdits(res dyngraph.Result) EditStats {
	stats := EditStats{Applied: res.Applied, Pending: res.Pending}
	if res.Materialized {
		old := e.state.Load()
		g := res.Snapshot.Graph
		ns := newEngineState(g, res.Snapshot.Epoch, e.cfg.observer)
		t0 := time.Now()
		ns.backward = sparse.UpdateBackwardTransition(old.backward, g, res.Delta.DirtyIn)
		ns.forward = sparse.UpdateForwardTransition(old.forward, g, res.Delta.DirtyOut)
		// Re-derive the cache-conscious layout for the mutated graph: the
		// incremental splice above works in natural order, and the permuted
		// operators are rebuilt from it. The old state's mode (not the
		// calling engine's config) carries forward, so engines derived
		// through With can never flip a shared state's layout.
		ns.layout = newLayoutState(old.layoutMode(), g, ns.backward, ns.forward)
		ns.transitionTime = time.Since(t0)
		// Mining is the expensive half of preprocessing; defer it so the
		// update path stays fast and non-memo queries never pay it. The old
		// epoch's mined result rides along so Stats keeps reporting the most
		// recently mined figures until this epoch mines its own.
		ns.comp = newCompHolder(g, e.cfg.miner.internal(), old.comp.peek())
		e.state.Store(ns)
		stats.Refreshed = true
		stats.RefreshTime = time.Since(t0)
		stats.Inserted = res.Delta.Inserted
		stats.Removed = res.Delta.Removed
	}
	if res.Applied > 0 || res.Materialized {
		// The engine exposes no delta-log reader and WriteSnapshot persists
		// whole epochs, so materialised log entries have no consumer here —
		// compact them away or a long-lived mutation workload would leak one
		// entry per edit forever. Pending (unmaterialised) entries survive,
		// as does anything accepted on top of the current epoch.
		e.store.Compact(e.state.Load().epoch)
	}
	st := e.state.Load()
	stats.Epoch = st.epoch
	stats.Nodes = st.g.N()
	stats.Edges = st.g.M()
	return stats
}

// Snapshot returns the engine's current graph version. The graph is
// immutable: it is safe to read from any goroutine while edits continue.
func (e *Engine) Snapshot() GraphSnapshot {
	st := e.load()
	return GraphSnapshot{Graph: st.g, Epoch: st.epoch, Pending: e.store.Pending()}
}

// Epoch returns the graph version currently served.
func (e *Engine) Epoch() uint64 { return e.load().epoch }

// WriteSnapshot persists the currently-served graph and its epoch in the
// binary snapshot format, so a server can warm-restart with ReadSnapshot +
// NewEngine(g, WithBaseEpoch(epoch)) without replaying the delta log.
// Pending (unmaterialised) edits are not included; call Refresh first if
// they must be. The returned GraphSnapshot is exactly the version written
// — with mutations racing the call, that may already differ from a fresh
// Snapshot(), so callers reporting what they persisted must use the return
// value.
func (e *Engine) WriteSnapshot(w io.Writer) (GraphSnapshot, error) {
	st := e.load()
	err := dyngraph.WriteSnapshot(w, dyngraph.Snapshot{Graph: st.g, Epoch: st.epoch})
	if err != nil {
		return GraphSnapshot{}, err
	}
	return GraphSnapshot{Graph: st.g, Epoch: st.epoch}, nil
}

// ReadSnapshot parses a binary snapshot written by WriteSnapshot, returning
// the graph and the epoch it was persisted at.
func ReadSnapshot(r io.Reader) (*Graph, uint64, error) {
	snap, err := dyngraph.ReadSnapshot(r)
	if err != nil {
		return nil, 0, err
	}
	return snap.Graph, snap.Epoch, nil
}
