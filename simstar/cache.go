package simstar

import (
	"container/list"
	"sync"
)

// DefaultCacheSize is the capacity, in cached score vectors, of an Engine's
// single-source result cache when WithCacheSize is not given.
const DefaultCacheSize = 256

// cacheKey identifies one cached single-source result. Two queries share an
// entry exactly when they resolve to the same canonical measure under the
// same registry generation, with the same numeric parameters, for the same
// query node, on the same graph epoch — the epoch is what keeps the cache
// honest now that ApplyEdits mutates the served graph in place: entries
// computed on an earlier epoch simply stop matching and age out through the
// LRU. config is a flat struct of comparable fields, so the key is usable
// as a map key directly; the serving-only knobs (workers, cache capacity,
// epoch policy) are stripped by cacheParams first. The tolerance stays in
// the key — it shapes the numbers — so an eps-approximate entry can never
// be served to a request with a different (in particular, tighter)
// tolerance; the engine's lookup additionally probes the tolerance-zero
// variant of an approximate key, because an exact result satisfies every
// tolerance (see Engine.cacheLookup).
type cacheKey struct {
	measure string
	gen     uint64
	epoch   uint64
	// layout is the generation of the engine state's node relabeling (0
	// without WithRelabeling). Cached vectors are stored in external id
	// order, so entries are layout-independent in principle; versioning the
	// key on the layout instance is defence in depth — a rederived
	// permutation can never be paired with a vector produced under an
	// earlier one.
	layout uint64
	params config
	node   int
}

// cacheEntry is what the LRU list holds. maxErr is the MaxError certificate
// the scores were computed under: 0 for exact results, and at most the
// key's tolerance for sieved ones. It rides with the entry so a cache hit
// re-serves the original certificate, not a recomputed (and possibly
// different) one.
type cacheEntry struct {
	key    cacheKey
	scores []float64
	maxErr float64
}

// CacheStats reports the state and lifetime counters of an Engine's
// single-source result cache.
type CacheStats struct {
	// Capacity is the maximum number of score vectors kept; 0 when the
	// cache is disabled.
	Capacity int
	// Size is the number of score vectors currently cached.
	Size int
	// Hits and Misses count lookups since the cache was created or last
	// purged. Evictions counts entries dropped to stay within Capacity.
	Hits, Misses, Evictions uint64
}

// resultCache is a mutex-guarded LRU over single-source score vectors. The
// Engine's other caches (transitions, compression) are immutable and need no
// locking; this one is the first mutable shared state on the query path, so
// every access goes through mu.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	items    map[cacheKey]*list.Element
	lru      list.List // front = most recently used; values are *cacheEntry
	stats    CacheStats
}

// newResultCache returns a cache bounded to capacity entries, or nil when
// capacity < 0 (every method tolerates a nil receiver, reading as a miss).
func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = DefaultCacheSize
	}
	c := &resultCache{capacity: capacity, items: make(map[cacheKey]*list.Element)}
	c.lru.Init()
	return c
}

// get returns a copy of the cached vector for key and its MaxError
// certificate, if present. Copying on the way out keeps callers free to
// mutate what they receive — the same contract Scores.Row and the kernels
// already give.
func (c *resultCache) get(key cacheKey) ([]float64, float64, bool) {
	if c == nil {
		return nil, 0, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, 0, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	entry := el.Value.(*cacheEntry)
	src, maxErr := entry.scores, entry.maxErr
	c.mu.Unlock()
	// Stored vectors are immutable — put swaps the slice, never writes into
	// it — so the O(n) copy happens outside the lock and concurrent hits
	// don't serialise behind each other's memcpy.
	out := make([]float64, len(src))
	copy(out, src)
	return out, maxErr, true
}

// put stores a copy of scores under key with its MaxError certificate,
// evicting from the LRU tail to stay within capacity.
func (c *resultCache) put(key cacheKey, scores []float64, maxErr float64) {
	if c == nil {
		return
	}
	cp := make([]float64, len(scores))
	copy(cp, scores)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		entry := el.Value.(*cacheEntry)
		entry.scores, entry.maxErr = cp, maxErr
		c.lru.MoveToFront(el)
		return
	}
	c.items[key] = c.lru.PushFront(&cacheEntry{key: key, scores: cp, maxErr: maxErr})
	for len(c.items) > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// purge drops every entry and resets the counters.
func (c *resultCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[cacheKey]*list.Element)
	c.lru.Init()
	c.stats = CacheStats{}
}

// snapshot returns the current stats.
func (c *resultCache) snapshot() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Capacity = c.capacity
	st.Size = len(c.items)
	return st
}
