package simstar

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Factory instantiates a Measure with the given options. Factories rather
// than instances are registered so each caller binds its own parameters.
type Factory func(opts ...Option) Measure

// regEntry is one registered factory plus whether it is this package's own
// registration. The flag is what lets the engine detect its fast-path
// measures without instantiating anything: a user override of a built-in
// name re-registers with builtin=false, so the fast paths step aside, while
// detection itself stays allocation-free (the zero-allocation query path
// depends on that).
type regEntry struct {
	f       Factory
	builtin bool
}

var registry = struct {
	sync.RWMutex
	factories map[string]regEntry
	aliases   map[string]string
}{
	factories: make(map[string]regEntry),
	aliases:   make(map[string]string),
}

// regGen counts registry mutations. Engine result caches fold the current
// generation into their keys, so re-registering a name (or re-pointing an
// alias) can never serve a result computed by the previous implementation.
var regGen atomic.Uint64

func registryGeneration() uint64 { return regGen.Load() }

// Register adds a measure factory under a name (case-insensitive). Tools
// and servers select measures by these names; registering an existing name
// replaces the previous factory, so applications may override built-ins.
func Register(name string, f Factory) {
	if f == nil {
		panic("simstar: Register with nil factory")
	}
	registry.Lock()
	defer registry.Unlock()
	registry.factories[strings.ToLower(name)] = regEntry{f: f}
	regGen.Add(1)
}

// registerBuiltin is Register for this package's own measures: the entry is
// flagged so engine fast paths recognise it (see regEntry).
func registerBuiltin(name string, f Factory) {
	registry.Lock()
	defer registry.Unlock()
	registry.factories[strings.ToLower(name)] = regEntry{f: f, builtin: true}
	regGen.Add(1)
}

// builtinFor resolves measureName through the registry without instantiating
// a measure and reports the canonical built-in name it denotes, or "" when
// the name is unknown or bound to a user-registered implementation (a
// re-registered built-in name must get the override, not a fast path). It
// never allocates on lower-case inputs, which is what keeps the engine's
// pooled query path at zero allocations.
func builtinFor(measureName string) string {
	n := strings.ToLower(measureName)
	registry.RLock()
	defer registry.RUnlock()
	if target, ok := registry.aliases[n]; ok {
		n = target
	}
	if e, ok := registry.factories[n]; ok && e.builtin {
		return n
	}
	return ""
}

// RegisterAlias makes alias resolve to the measure registered under name.
func RegisterAlias(alias, name string) {
	registry.Lock()
	defer registry.Unlock()
	registry.aliases[strings.ToLower(alias)] = strings.ToLower(name)
	regGen.Add(1)
}

// canonical resolves aliases and case to the registered name.
func canonical(name string) string {
	n := strings.ToLower(name)
	registry.RLock()
	defer registry.RUnlock()
	if target, ok := registry.aliases[n]; ok {
		return target
	}
	return n
}

// Lookup instantiates the measure registered under name (or one of its
// aliases) with the given options.
func Lookup(name string, opts ...Option) (Measure, error) {
	key := canonical(name)
	registry.RLock()
	e, ok := registry.factories[key]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("simstar: unknown measure %q (have: %s)", name, strings.Join(Names(), ", "))
	}
	return e.f(opts...), nil
}

// Names returns the registered canonical measure names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.factories))
	for n := range registry.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
