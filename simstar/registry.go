package simstar

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Factory instantiates a Measure with the given options. Factories rather
// than instances are registered so each caller binds its own parameters.
type Factory func(opts ...Option) Measure

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
	aliases   map[string]string
}{
	factories: make(map[string]Factory),
	aliases:   make(map[string]string),
}

// regGen counts registry mutations. Engine result caches fold the current
// generation into their keys, so re-registering a name (or re-pointing an
// alias) can never serve a result computed by the previous implementation.
var regGen atomic.Uint64

func registryGeneration() uint64 { return regGen.Load() }

// Register adds a measure factory under a name (case-insensitive). Tools
// and servers select measures by these names; registering an existing name
// replaces the previous factory, so applications may override built-ins.
func Register(name string, f Factory) {
	if f == nil {
		panic("simstar: Register with nil factory")
	}
	registry.Lock()
	defer registry.Unlock()
	registry.factories[strings.ToLower(name)] = f
	regGen.Add(1)
}

// RegisterAlias makes alias resolve to the measure registered under name.
func RegisterAlias(alias, name string) {
	registry.Lock()
	defer registry.Unlock()
	registry.aliases[strings.ToLower(alias)] = strings.ToLower(name)
	regGen.Add(1)
}

// canonical resolves aliases and case to the registered name.
func canonical(name string) string {
	n := strings.ToLower(name)
	registry.RLock()
	defer registry.RUnlock()
	if target, ok := registry.aliases[n]; ok {
		return target
	}
	return n
}

// Lookup instantiates the measure registered under name (or one of its
// aliases) with the given options.
func Lookup(name string, opts ...Option) (Measure, error) {
	key := canonical(name)
	registry.RLock()
	f, ok := registry.factories[key]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("simstar: unknown measure %q (have: %s)", name, strings.Join(Names(), ", "))
	}
	return f(opts...), nil
}

// Names returns the registered canonical measure names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.factories))
	for n := range registry.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
