package simstar

import "repro/internal/core"

// Ranked is one entry of a top-k result.
type Ranked = core.Ranked

// TopK returns the k highest-scoring nodes from a score vector, excluding
// the nodes in exclude (typically the query itself). Selection runs in
// O(n log k) with a bounded min-heap; ties break by node id for
// determinism.
//
// The boundaries are part of the contract: k <= 0 returns an empty result,
// and k greater than the number of candidates (len(scores) minus the
// excluded nodes) returns every candidate, fully ordered. An oversized k is
// clamped before any allocation, so callers may pass "give me everything"
// values safely.
func TopK(scores []float64, k int, exclude ...int) []Ranked {
	return core.TopK(scores, k, exclude...)
}

// TopKInto is TopK writing into caller-provided storage: the result is
// built in dst's backing array, grown only when its capacity is below the
// clamped k. Entries and order are identical to TopK. With cap(dst) >=
// min(k, len(scores)) and a short exclusion list the call performs zero
// heap allocations, which is what the streaming serving paths run on.
func TopKInto(scores []float64, k int, dst []Ranked, exclude ...int) []Ranked {
	return core.TopKInto(scores, k, dst, exclude...)
}
