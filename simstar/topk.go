package simstar

import "repro/internal/core"

// Ranked is one entry of a top-k result.
type Ranked = core.Ranked

// TopK returns the k highest-scoring nodes from a score vector, excluding
// the nodes in exclude (typically the query itself). Selection runs in
// O(n log k) with a bounded min-heap; ties break by node id for
// determinism.
func TopK(scores []float64, k int, exclude ...int) []Ranked {
	return core.TopK(scores, k, exclude...)
}
