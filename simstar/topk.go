package simstar

import "repro/internal/core"

// Ranked is one entry of a top-k result.
type Ranked = core.Ranked

// TopK returns the k highest-scoring nodes from a score vector, excluding
// the nodes in exclude (typically the query itself). Selection runs in
// O(n log k) with a bounded min-heap; ties break by node id for
// determinism.
//
// The boundaries are part of the contract: k <= 0 returns an empty result,
// and k greater than the number of candidates (len(scores) minus the
// excluded nodes) returns every candidate, fully ordered. An oversized k is
// clamped before any allocation, so callers may pass "give me everything"
// values safely.
func TopK(scores []float64, k int, exclude ...int) []Ranked {
	return core.TopK(scores, k, exclude...)
}
