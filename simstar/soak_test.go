package simstar_test

import (
	"context"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/simstar"
)

// The soak contract: under concurrent ApplyEdits/Snapshot churn, every
// MultiSource, BatchTopK and TopKStream answer must be bitwise-identical to
// a from-scratch engine at SOME materialised epoch — a query pins one
// atomic engineState and never sees a torn mix of two. The schedule is
// seeded and the op budget fixed, so the test is reproducible; it is run
// under -race in CI.

const (
	soakNodes      = 48
	soakBatches    = 5  // edit batches, so epochs 0..soakBatches exist
	soakOpsPerGoro = 40 // queries per reader goroutine
	soakReaders    = 4
	soakK          = 8
)

var soakMeasures = []string{simstar.MeasureGeometric, simstar.MeasureRWR}
var soakProbes = []int{1, 9, 17, 25}

// soakEdits evolves the edge slice deterministically (no map iteration —
// slice order is the schedule) and returns the batch plus the mutated
// slice. Node count stays fixed so every epoch's probe set is valid.
func soakEdits(rng *rand.Rand, edges [][2]int, set map[[2]int]bool) ([]simstar.Edit, [][2]int) {
	var batch []simstar.Edit
	for j := 0; j < 8; j++ {
		if rng.Intn(2) == 0 && len(edges) > 8 {
			i := rng.Intn(len(edges))
			e := edges[i]
			edges[i] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			delete(set, e)
			batch = append(batch, simstar.DeleteEdge(e[0], e[1]))
			continue
		}
		for {
			e := [2]int{rng.Intn(soakNodes), rng.Intn(soakNodes)}
			if !set[e] {
				set[e] = true
				edges = append(edges, e)
				batch = append(batch, simstar.InsertEdge(e[0], e[1]))
				break
			}
		}
	}
	return batch, edges
}

// soakExpected holds the reference answers of one epoch, computed by a
// fresh engine on that epoch's graph: exact single-source vectors and
// top-k rankings per (measure, probe).
type soakExpected struct {
	scores map[string]map[int][]float64
	top    map[string]map[int][]simstar.Ranked
}

func soakReference(t *testing.T, edges [][2]int, opts []simstar.Option) soakExpected {
	t.Helper()
	eng := simstar.NewEngine(simstar.GraphFromEdges(soakNodes, append([][2]int(nil), edges...)), opts...)
	exp := soakExpected{
		scores: make(map[string]map[int][]float64),
		top:    make(map[string]map[int][]simstar.Ranked),
	}
	ctx := context.Background()
	for _, m := range soakMeasures {
		exp.scores[m] = make(map[int][]float64)
		exp.top[m] = make(map[int][]simstar.Ranked)
		for _, q := range soakProbes {
			s, err := eng.SingleSource(ctx, m, q)
			if err != nil {
				t.Fatal(err)
			}
			exp.scores[m][q] = s
			top, err := eng.TopK(ctx, m, q, soakK)
			if err != nil {
				t.Fatal(err)
			}
			exp.top[m][q] = top
		}
	}
	return exp
}

func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// epochsMatchingScores returns the epochs whose reference vector for
// (measure, q) equals got bitwise.
func epochsMatchingScores(refs []soakExpected, m string, q int, got []float64) []int {
	var out []int
	for e, ref := range refs {
		if float64sEqual(ref.scores[m][q], got) {
			out = append(out, e)
		}
	}
	return out
}

func epochsMatchingTop(refs []soakExpected, m string, q int, got []simstar.Ranked) []int {
	var out []int
	for e, ref := range refs {
		if rankedSliceEqual(ref.top[m][q], got) {
			out = append(out, e)
		}
	}
	return out
}

func intersect(a, b []int) []int {
	var out []int
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

func TestSoakConcurrentQueriesDuringChurn(t *testing.T) {
	opts := []simstar.Option{simstar.WithC(0.6), simstar.WithK(4)}
	rng := rand.New(rand.NewSource(1234))

	// Epoch 0 graph plus the deterministic batch sequence, with a
	// from-scratch reference engine's answers at every epoch.
	edges := make([][2]int, 0, 220)
	set := make(map[[2]int]bool)
	for len(edges) < 200 {
		e := [2]int{rng.Intn(soakNodes), rng.Intn(soakNodes)}
		if !set[e] {
			set[e] = true
			edges = append(edges, e)
		}
	}
	baseEdges := append([][2]int(nil), edges...)
	batches := make([][]simstar.Edit, soakBatches)
	refs := make([]soakExpected, soakBatches+1)
	refs[0] = soakReference(t, edges, opts)
	for b := 0; b < soakBatches; b++ {
		batches[b], edges = soakEdits(rng, edges, set)
		refs[b+1] = soakReference(t, edges, opts)
	}

	eng := simstar.NewEngine(simstar.GraphFromEdges(soakNodes, baseEdges), opts...)
	ctx := context.Background()

	// Writer: materialise each batch, interleaved with snapshot traffic —
	// the full write-path surface racing the readers.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b, batch := range batches {
			stats, err := eng.ApplyEdits(batch...)
			if err != nil {
				t.Errorf("batch %d: %v", b, err)
				return
			}
			if !stats.Refreshed {
				t.Errorf("batch %d not refreshed", b)
				return
			}
			if snap := eng.Snapshot(); snap.Graph == nil {
				t.Errorf("snapshot after batch %d: %+v", b, snap)
				return
			}
			if _, err := eng.WriteSnapshot(io.Discard); err != nil {
				t.Errorf("write snapshot after batch %d: %v", b, err)
				return
			}
			runtime.Gosched()
		}
	}()

	// Readers: seeded schedules of MultiSource / BatchTopK / TopKStream.
	// Every answer must match one epoch's reference bitwise, and both
	// queries of one batch must match the SAME epoch — the no-torn-reads
	// assertion across the atomic state swap.
	for r := 0; r < soakReaders; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < soakOpsPerGoro; op++ {
				m := soakMeasures[rng.Intn(len(soakMeasures))]
				m2 := soakMeasures[rng.Intn(len(soakMeasures))]
				q := soakProbes[rng.Intn(len(soakProbes))]
				q2 := soakProbes[rng.Intn(len(soakProbes))]
				switch rng.Intn(3) {
				case 0:
					results := eng.MultiSource(ctx, []simstar.Query{
						{Measure: m, Node: q},
						{Measure: m2, Node: q2},
					})
					for i, res := range results {
						if res.Err != nil {
							t.Errorf("op %d slot %d: %v", op, i, res.Err)
							return
						}
					}
					es := intersect(
						epochsMatchingScores(refs, m, q, results[0].Scores),
						epochsMatchingScores(refs, m2, q2, results[1].Scores))
					if len(es) == 0 {
						t.Errorf("op %d: MultiSource answers match no single epoch (torn batch?)", op)
						return
					}
				case 1:
					results := eng.BatchTopK(ctx, []simstar.Query{
						{Measure: m, Node: q, K: soakK},
						{Measure: m2, Node: q2, K: soakK},
					})
					for i, res := range results {
						if res.Err != nil {
							t.Errorf("op %d slot %d: %v", op, i, res.Err)
							return
						}
					}
					es := intersect(
						epochsMatchingTop(refs, m, q, results[0].Top),
						epochsMatchingTop(refs, m2, q2, results[1].Top))
					if len(es) == 0 {
						t.Errorf("op %d: BatchTopK answers match no single epoch (torn batch?)", op)
						return
					}
				default:
					s, err := eng.TopKStream(ctx, m, q, soakK)
					if err != nil {
						t.Errorf("op %d: %v", op, err)
						return
					}
					if len(epochsMatchingTop(refs, m, q, s.Collect())) == 0 {
						t.Errorf("op %d: TopKStream answer matches no epoch", op)
						return
					}
				}
			}
		}(7_000 + int64(r))
	}
	wg.Wait()

	// After the churn settles, the engine must serve the final epoch's
	// reference answers exactly.
	final := refs[soakBatches]
	for _, m := range soakMeasures {
		for _, q := range soakProbes {
			got, err := eng.SingleSource(ctx, m, q)
			if err != nil {
				t.Fatal(err)
			}
			if !float64sEqual(got, final.scores[m][q]) {
				t.Fatalf("final %s q=%d diverges from the from-scratch reference", m, q)
			}
		}
	}
}
