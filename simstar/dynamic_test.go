package simstar_test

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/simstar"
)

// randomEdges returns a seeded random edge list on n nodes.
func randomEdges(rng *rand.Rand, n, m int) [][2]int {
	edges := make([][2]int, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return edges
}

// churn generates a mixed edit batch against the live edge set, keeping the
// set in sync so deletes hit existing edges and inserts genuinely add.
func churn(rng *rand.Rand, n int, set map[[2]int]bool, count int) []simstar.Edit {
	var present [][2]int
	for e := range set {
		present = append(present, e)
	}
	edits := make([]simstar.Edit, 0, count)
	for i := 0; i < count; i++ {
		if i%2 == 0 && len(present) > 0 {
			j := rng.Intn(len(present))
			e := present[j]
			present[j] = present[len(present)-1]
			present = present[:len(present)-1]
			delete(set, e)
			edits = append(edits, simstar.DeleteEdge(e[0], e[1]))
			continue
		}
		for {
			e := [2]int{rng.Intn(n), rng.Intn(n)}
			if !set[e] {
				set[e] = true
				edits = append(edits, simstar.InsertEdge(e[0], e[1]))
				break
			}
		}
	}
	return edits
}

// The acceptance contract of the dynamic subsystem: after ApplyEdits, every
// registered measure must produce scores bitwise-identical — not merely
// within tolerance — to a from-scratch engine built on the mutated graph,
// through both the single-source and the all-pairs engine paths.
func TestApplyEditsBitwiseConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 40
	base := randomEdges(rng, n, 160)
	set := make(map[[2]int]bool)
	var dedup [][2]int
	for _, e := range base {
		if !set[e] {
			set[e] = true
			dedup = append(dedup, e)
		}
	}
	opts := []simstar.Option{simstar.WithC(0.6), simstar.WithK(4)}
	eng := simstar.NewEngine(simstar.GraphFromEdges(n, dedup), opts...)

	edits := churn(rng, n, set, 12)
	edits = append(edits, simstar.InsertEdge(n+1, 0)) // and grow the graph
	stats, err := eng.ApplyEdits(edits...)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Refreshed || stats.Epoch != 1 {
		t.Fatalf("stats = %+v, want refreshed epoch 1", stats)
	}

	var mutated [][2]int
	for e := range set {
		mutated = append(mutated, e)
	}
	mutated = append(mutated, [2]int{n + 1, 0})
	fresh := simstar.NewEngine(simstar.GraphFromEdges(n+2, mutated), opts...)

	if eng.Graph().N() != fresh.Graph().N() || eng.Graph().M() != fresh.Graph().M() {
		t.Fatalf("graphs diverge: %d/%d vs %d/%d",
			eng.Graph().N(), eng.Graph().M(), fresh.Graph().N(), fresh.Graph().M())
	}
	ctx := context.Background()
	for _, name := range simstar.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			gotAll, err := eng.AllPairs(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			wantAll, err := fresh.AllPairs(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < gotAll.N(); i++ {
				for j := 0; j < gotAll.N(); j++ {
					if gotAll.At(i, j) != wantAll.At(i, j) {
						t.Fatalf("AllPairs(%d,%d) = %v, want %v (bitwise)", i, j, gotAll.At(i, j), wantAll.At(i, j))
					}
				}
			}
			for _, q := range []int{0, 7, n + 1} {
				got, err := eng.SingleSource(ctx, name, q)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.SingleSource(ctx, name, q)
				if err != nil {
					t.Fatal(err)
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("SingleSource(%d)[%d] = %v, want %v (bitwise)", q, j, got[j], want[j])
					}
				}
			}
		})
	}
}

// A mutation must invalidate cached results: the same query before and after
// an edit that changes its answer returns different scores, with no stale
// cache hit in between.
func TestApplyEditsInvalidatesResultCache(t *testing.T) {
	ctx := context.Background()
	g := simstar.GraphFromEdges(4, [][2]int{{0, 2}, {1, 2}, {3, 1}})
	eng := simstar.NewEngine(g, simstar.WithK(4))

	before, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache and prove it hits on the same epoch.
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0); err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Hits == 0 {
		t.Fatal("expected a cache hit before the edit")
	}

	if _, err := eng.ApplyEdits(simstar.InsertEdge(3, 2)); err != nil {
		t.Fatal(err)
	}
	hitsBefore := eng.CacheStats().Hits
	after, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eng.CacheStats().Hits != hitsBefore {
		t.Fatal("post-edit query hit the cache: stale epoch served")
	}
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("scores unchanged by an edit that alters in-neighbourhoods")
	}
	// The mutated answer must now itself be cached (keyed on the new epoch).
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0); err != nil {
		t.Fatal(err)
	}
	if eng.CacheStats().Hits != hitsBefore+1 {
		t.Fatal("new-epoch result not cached")
	}
}

// Engines derived through With share the store: an edit through one is
// visible to all, and each sees the bumped epoch.
func TestApplyEditsSharedAcrossWith(t *testing.T) {
	g := simstar.GraphFromEdges(3, [][2]int{{0, 1}})
	eng := simstar.NewEngine(g)
	alt := eng.With(simstar.WithK(9))
	if _, err := alt.ApplyEdits(simstar.InsertEdge(1, 2)); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 1 || alt.Epoch() != 1 {
		t.Fatalf("epochs = %d/%d, want 1/1", eng.Epoch(), alt.Epoch())
	}
	if !eng.Graph().HasEdge(1, 2) {
		t.Fatal("edit through With-derived engine invisible to parent")
	}
}

func TestEpochIntervalBuffersEdits(t *testing.T) {
	g := simstar.GraphFromEdges(3, [][2]int{{0, 1}})
	eng := simstar.NewEngine(g, simstar.WithEpochInterval(3))
	st, err := eng.ApplyEdits(simstar.InsertEdge(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Refreshed || st.Pending != 1 || eng.Epoch() != 0 {
		t.Fatalf("stats = %+v epoch %d, want buffered at epoch 0", st, eng.Epoch())
	}
	if eng.Graph().HasEdge(1, 2) {
		t.Fatal("pending edit visible before materialisation")
	}
	if snap := eng.Snapshot(); snap.Pending != 1 || snap.Epoch != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Refresh forces the epoch regardless of the interval.
	st, err = eng.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Refreshed || st.Epoch != 1 || !eng.Graph().HasEdge(1, 2) {
		t.Fatalf("refresh stats = %+v", st)
	}
}

func TestNoOpEditsKeepEpochAndCache(t *testing.T) {
	ctx := context.Background()
	g := simstar.GraphFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	eng := simstar.NewEngine(g)
	if _, err := eng.SingleSource(ctx, simstar.MeasureRWR, 0); err != nil {
		t.Fatal(err)
	}
	st, err := eng.ApplyEdits(simstar.InsertEdge(0, 1)) // already present
	if err != nil {
		t.Fatal(err)
	}
	if st.Refreshed || st.Epoch != 0 {
		t.Fatalf("no-op edit stats = %+v", st)
	}
	hits := eng.CacheStats().Hits
	if _, err := eng.SingleSource(ctx, simstar.MeasureRWR, 0); err != nil {
		t.Fatal(err)
	}
	if eng.CacheStats().Hits != hits+1 {
		t.Fatal("no-op edit needlessly invalidated the cache")
	}
}

// Compression stats must not flap to zero after a mutation: until the new
// epoch mines (lazily, on the first memo query), Stats carries the most
// recently mined epoch's figures forward.
func TestStatsCarryCompressionAcrossEdits(t *testing.T) {
	g := simstar.GraphFromEdges(6, [][2]int{{0, 2}, {1, 2}, {3, 2}, {0, 4}, {1, 4}, {3, 4}, {5, 0}})
	eng := simstar.NewEngine(g)
	base := eng.Stats()
	if base.CompressedEdges == 0 {
		t.Skip("toy graph mined no bicliques; carry-forward unobservable")
	}
	if _, err := eng.ApplyEdits(simstar.InsertEdge(5, 1)); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch)
	}
	if st.CompressedEdges != base.CompressedEdges || st.CompressionTime == 0 {
		t.Fatalf("compression stats flapped after edit: %+v vs base %+v", st, base)
	}
	// A memo query mines the new epoch; stats then describe it.
	if _, err := eng.AllPairs(context.Background(), simstar.MeasureGeometricMemo); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().CompressedEdges == 0 {
		t.Fatal("new epoch mined but stats empty")
	}
}

func TestApplyEditsRejectsInvalid(t *testing.T) {
	eng := simstar.NewEngine(simstar.GraphFromEdges(2, [][2]int{{0, 1}}))
	if _, err := eng.ApplyEdits(simstar.InsertEdge(-1, 0)); err == nil {
		t.Fatal("want error for negative id")
	}
	if eng.Epoch() != 0 {
		t.Fatal("rejected batch advanced the epoch")
	}
}

// Engine-level snapshot round trip: persist, warm-restart with the epoch
// resumed, and keep answering identically.
func TestEngineSnapshotWarmRestart(t *testing.T) {
	ctx := context.Background()
	eng := simstar.NewEngine(simstar.GraphFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}), simstar.WithK(4))
	if _, err := eng.ApplyEdits(simstar.InsertEdge(3, 0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	written, err := eng.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written.Epoch != 1 {
		t.Fatalf("WriteSnapshot reported epoch %d, want 1", written.Epoch)
	}
	g, epoch, err := simstar.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	warm := simstar.NewEngine(g, simstar.WithK(4), simstar.WithBaseEpoch(epoch))
	if warm.Epoch() != 1 {
		t.Fatalf("warm epoch = %d, want 1", warm.Epoch())
	}
	want, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.SingleSource(ctx, simstar.MeasureGeometric, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("warm-restart scores diverge at %d: %v != %v", i, got[i], want[i])
		}
	}
	// The restarted engine keeps versioning forward.
	st, err := warm.ApplyEdits(simstar.DeleteEdge(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 {
		t.Fatalf("epoch after restart edit = %d, want 2", st.Epoch)
	}
}

// Queries racing mutations: every query must answer coherently from some
// epoch while edits stream in. Run under -race in CI.
func TestQueriesRacingApplyEdits(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	const n = 30
	set := make(map[[2]int]bool)
	var edges [][2]int
	for _, e := range randomEdges(rng, n, 120) {
		if !set[e] {
			set[e] = true
			edges = append(edges, e)
		}
	}
	eng := simstar.NewEngine(simstar.GraphFromEdges(n, edges), simstar.WithK(3))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := (w*7 + i) % n
				res := eng.MultiSource(ctx, []simstar.Query{
					{Measure: simstar.MeasureGeometric, Node: q},
					{Measure: simstar.MeasureRWR, Node: (q + 1) % n},
				})
				for _, r := range res {
					if r.Err != nil {
						t.Errorf("query error under mutation: %v", r.Err)
						return
					}
					if len(r.Scores) < n {
						t.Errorf("torn score vector: len %d", len(r.Scores))
						return
					}
				}
			}
		}(w)
	}
	mrng := rand.New(rand.NewSource(6))
	for i := 0; i < 60; i++ {
		if _, err := eng.ApplyEdits(churn(mrng, n, set, 3)...); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// The acceptance benchmark: at ~1% edge churn, the incremental ApplyEdits
// refresh must beat tearing the engine down and rebuilding it from scratch
// on the mutated graph. The CI bench smoke runs this at -benchtime=1x.
func BenchmarkEngineRefreshVsRebuild(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	const n, m = 4000, 32000
	set := make(map[[2]int]bool)
	var edges [][2]int
	for _, e := range randomEdges(rng, n, m) {
		if !set[e] {
			set[e] = true
			edges = append(edges, e)
		}
	}
	base := simstar.GraphFromEdges(n, edges)
	batch := int(float64(len(edges)) * 0.01)

	b.Run("incremental-ApplyEdits", func(b *testing.B) {
		eng := simstar.NewEngine(base)
		crng := rand.New(rand.NewSource(34))
		cset := make(map[[2]int]bool, len(set))
		for e := range set {
			cset[e] = true
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			edits := churn(crng, n, cset, batch)
			b.StartTimer()
			if _, err := eng.ApplyEdits(edits...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		crng := rand.New(rand.NewSource(34))
		cset := make(map[[2]int]bool, len(set))
		for e := range set {
			cset[e] = true
		}
		g := base
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			churn(crng, n, cset, batch)
			var cur [][2]int
			for e := range cset {
				cur = append(cur, e)
			}
			b.StartTimer()
			g = simstar.GraphFromEdges(n, cur)
			simstar.NewEngine(g)
		}
	})
}
