package simstar

import (
	"time"

	"repro/internal/biclique"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/prank"
	"repro/internal/rwr"
	"repro/internal/simrank"
	"repro/internal/sparse"
	"repro/internal/sparsesim"
)

// Option configures a Measure or an Engine. The one functional-option set
// replaces the per-package options structs the measures used to take; each
// measure reads the fields it understands and ignores the rest.
type Option func(*config)

// config carries every tunable across the measure family. Zero values mean
// "use the paper's default" (C=0.6, K=5, λ=0.5, δ=1e-4), resolved by each
// measure's own defaulting so simstar and direct internal calls agree.
type config struct {
	c         float64
	k         int
	eps       float64
	sieve     float64
	tolerance float64
	lambda    float64
	delta     float64
	rank      int
	miner     MinerOptions
	// Engine-only knobs. These shape how queries are served, never what
	// they return, and are therefore excluded from result-cache keys
	// (see (config).cacheParams). The graph *content* a query sees is
	// versioned separately, by the epoch field of the cache key.
	workers        int
	parallelSweeps int
	cacheSize      int
	epochInterval  int
	baseEpoch      uint64
	relabel        RelabelMode
	observer       *Observer
	deadline       time.Duration
	fault          *faultHook
}

// cacheParams strips the serving knobs so that two configs computing the
// same numbers share one result-cache key regardless of worker count,
// cache capacity, or epoch policy. Tolerances below MinTolerance normalise
// to 0 for the same reason: they are served by the exact kernels, so their
// results are the exact results — a distinct key would fragment the cache
// and dodge the exact-donor probe.
//
// The directive below is the machine-checked contract (simlint's cachekey
// analyzer): every field stripped here must be listed, and anything not
// listed must ride into the cache key untouched. Add a field to the list
// only if it can never change what a query returns.
//
//simstar:cachekey-exempt workers parallelSweeps cacheSize epochInterval baseEpoch relabel observer deadline fault
func (cfg config) cacheParams() config {
	cfg.workers = 0
	// Intra-query sweep parallelism is row-range partitioned with per-element
	// accumulation order preserved, so results are bitwise-identical at every
	// worker count — a serving knob.
	cfg.parallelSweeps = 0
	cfg.cacheSize = 0
	cfg.epochInterval = 0
	cfg.baseEpoch = 0
	// Observation never changes what a query returns; stripping it also
	// keeps batch kernel-grouping keys (which embed cacheParams) identical
	// with and without metrics.
	cfg.observer = nil
	// Relabeling changes the internal layout, never the translated scores;
	// cached vectors are stored in external id order, so the mode is a
	// serving knob here. The layout *instance* is still versioned, by the
	// cache key's layout generation (see cacheKey).
	cfg.relabel = RelabelNone
	// A deadline bounds how long a query may run, never what it returns when
	// it completes — a query that beat its budget produced the exact same
	// scores an unbounded run would have.
	cfg.deadline = 0
	// Fault injection perturbs scheduling (delays) or aborts queries
	// (panics, surfaced as ErrKernelPanic); a query that survives to return
	// a result returns the unperturbed result.
	cfg.fault = nil
	if cfg.tolerance < MinTolerance {
		cfg.tolerance = 0
	}
	return cfg
}

// MinerOptions controls the biclique miner behind the memoized SimRank*
// variants and the Engine's cached compression.
type MinerOptions struct {
	// MinSources and MinTargets bound biclique dimensions (both >= 2;
	// smaller bicliques never save edges).
	MinSources, MinTargets int
	// Passes is the number of pair-seeded greedy sweeps; 0 means the default.
	Passes int
	// MaxPairsPerNode caps source pairs enumerated per node; 0 = default.
	MaxPairsPerNode int
	// DisablePairMining keeps only the identical-set pass.
	DisablePairMining bool
}

func (m MinerOptions) internal() biclique.Options {
	return biclique.Options{
		MinSources:        m.MinSources,
		MinTargets:        m.MinTargets,
		Passes:            m.Passes,
		MaxPairsPerNode:   m.MaxPairsPerNode,
		DisablePairMining: m.DisablePairMining,
	}
}

// WithC sets the damping factor in (0, 1). Default 0.6.
func WithC(c float64) Option { return func(cfg *config) { cfg.c = c } }

// WithK sets the iteration count (series truncation length). Default 5.
// Ignored when WithEps selects the count from the error bounds.
func WithK(k int) Option { return func(cfg *config) { cfg.k = k } }

// WithEps derives the iteration count from the convergence bounds instead
// of WithK: the smallest K with Cᵏ⁺¹ <= eps (geometric) or
// Cᵏ⁺¹/(k+1)! <= eps (exponential).
func WithEps(eps float64) Option { return func(cfg *config) { cfg.eps = eps } }

// WithSieve zeroes result entries below the threshold after the final
// iteration (the paper clips at 1e-4 to save space).
func WithSieve(eps float64) Option { return func(cfg *config) { cfg.sieve = eps } }

// MinTolerance is the smallest tolerance WithTolerance honours: below it
// (including the zero default) queries run the exact kernels and report a
// zero MaxError certificate.
const MinTolerance = sparse.MinCertTolerance

// WithTolerance switches single-source queries served by an Engine to the
// threshold-sieved approximate propagation path: each iteration drops
// frontier entries too small to move any score by more than the remaining
// error budget, and the result carries a certified bound MaxError <= eps on
// the element-wise deviation from the exact kernels. The default (0) and
// any eps below MinTolerance serve exact results with a zero certificate.
// Only the Engine fast-path measures (geometric and exponential SimRank*,
// their memo variants, and RWR) have a sieved path; other measures ignore
// the tolerance and answer exactly. The tolerance is part of the
// result-cache key: an approximate entry can only be re-served to requests
// with the identical tolerance (exact entries satisfy any tolerance).
func WithTolerance(eps float64) Option { return func(cfg *config) { cfg.tolerance = eps } }

// RelabelMode selects the cache-conscious node relabeling an Engine applies
// to its preprocessed transition matrices (see WithRelabeling).
type RelabelMode int

// The relabeling modes.
const (
	// RelabelNone serves the matrices in the graph's natural node order.
	RelabelNone RelabelMode = iota
	// RelabelDegree numbers nodes by descending total degree, clustering
	// the hub rows and the hot entries of every iteration vector at the
	// front of memory.
	RelabelDegree
	// RelabelRCM applies a reverse Cuthill–McKee order over the undirected
	// closure, minimising how far a sweep's gathers stray from the rows it
	// just touched. The best default for graphs with community or locality
	// structure.
	RelabelRCM
)

// WithRelabeling makes the Engine relabel the nodes of its cached transition
// matrices for cache locality: the permutation is computed once per graph
// epoch at preprocessing time, the single-source, top-k and batch fast paths
// run on the permuted operators, and node ids are translated at the API
// boundary — queries and results always speak the graph's own ids, and the
// scores match the unrelabelled engine to within float reassociation noise
// (≤ 1e-12, tested). All-pairs queries and non-fast-path measures run on the
// natural order and are unaffected.
//
// Like WithMiner, the mode is structure-shaping and fixed at engine
// construction: passing it through With or per-query options has no effect.
// ApplyEdits re-derives the permutation for each materialised epoch.
func WithRelabeling(mode RelabelMode) Option { return func(cfg *config) { cfg.relabel = mode } }

// WithMiner configures the biclique miner used by the memoized variants and
// the Engine's cached compression.
func WithMiner(m MinerOptions) Option { return func(cfg *config) { cfg.miner = m } }

// WithLambda balances P-Rank's in-link (λ) versus out-link (1−λ) evidence.
// Default 0.5. Only P-Rank reads it.
func WithLambda(l float64) Option { return func(cfg *config) { cfg.lambda = l } }

// WithDelta sets the in-flight sieving threshold of the sparse SimRank*
// solver (entries below δ are dropped during iteration, not after).
// Default 1e-4. Only the sparse measure reads it.
func WithDelta(d float64) Option { return func(cfg *config) { cfg.delta = d } }

// WithWorkers bounds the concurrency of the Engine's batch queries
// (MultiSource, BatchTopK). 0, the default, means one worker per CPU.
// Only the Engine reads it; it never changes what a query returns.
func WithWorkers(n int) Option { return func(cfg *config) { cfg.workers = n } }

// WithParallelSweeps sets the intra-query parallelism of the sparse sweep
// kernels: each sweep of a single-source, top-k or batch query is row-range
// partitioned across n workers drawn from a persistent per-engine pool. The
// partition preserves per-element accumulation order, so scores — and
// tolerance certificates — are bitwise-identical at every worker count
// (conformance-tested for every measure); like WithWorkers it never changes
// what a query returns and is excluded from result-cache keys.
//
// 0 (the default) and 1 serve each query on its calling goroutine, leaving
// the blocked batch kernels' own all-core row fan-out untouched; n > 1 uses
// exactly n workers for every sweep, including the blocked paths; a negative
// n uses one worker per CPU. The zero-alloc discipline of the pooled serving
// paths survives fan-out: workers are reused across queries, and a warmed
// engine adds no per-query allocations at any setting.
func WithParallelSweeps(n int) Option { return func(cfg *config) { cfg.parallelSweeps = n } }

// sweepWorkers resolves WithParallelSweeps to an effective worker count;
// 1 means serial (no Sweeper is borrowed).
func (cfg config) sweepWorkers() int {
	switch {
	case cfg.parallelSweeps < 0:
		return par.Workers()
	case cfg.parallelSweeps <= 1:
		return 1
	default:
		return cfg.parallelSweeps
	}
}

// WithCacheSize sets the capacity, in entries, of the Engine's single-source
// result cache. 0, the default, means DefaultCacheSize; a negative value
// disables the cache. Only the Engine reads it; it never changes what a
// query returns.
func WithCacheSize(n int) Option { return func(cfg *config) { cfg.cacheSize = n } }

// WithEpochInterval sets how many edits the Engine's versioned store buffers
// before materialising a new graph epoch. The default (and anything <= 1)
// materialises on every ApplyEdits call, so mutations are immediately
// visible; a larger interval amortises the refresh over write bursts at the
// price of queries reading an up-to-(n-1)-edits-stale epoch until the next
// materialisation or Refresh. Fixed at engine construction; it never changes
// what a query returns for the epoch it runs on.
func WithEpochInterval(n int) Option { return func(cfg *config) { cfg.epochInterval = n } }

// WithBaseEpoch numbers the engine's initial graph epoch, so an engine
// warm-started from a persisted snapshot (ReadSnapshot) resumes the version
// sequence instead of restarting at 0. Fixed at engine construction.
func WithBaseEpoch(epoch uint64) Option { return func(cfg *config) { cfg.baseEpoch = epoch } }

// WithDeadline gives every query served by an Engine a wall-clock budget:
// at query entry the engine derives a context.WithTimeout(ctx, d) and the
// kernels' amortised cancellation polls abort the run once it expires,
// surfacing context.DeadlineExceeded. The budget is per query (each
// SingleSource/TopK/stream call, each blocked batch chunk), layered on top
// of whatever deadline the caller's own context already carries — whichever
// fires first wins. 0, the default, imposes no engine-side budget. A
// deadline changes how long a query may run, never what a completed query
// returns, so it is excluded from result-cache keys.
func WithDeadline(d time.Duration) Option { return func(cfg *config) { cfg.deadline = d } }

// WithFaultHook installs a fault-injection callback on the engine's kernel
// entry points, for chaos testing: fn is invoked with the fault site name
// (FaultPointKernel) immediately before each kernel run, and may sleep (a
// slow fault) or panic (an injected crash — isolated by the engine and
// surfaced as an ErrKernelPanic-wrapped error, never a process crash).
// Typically fn is (*fault.Injector).Hook(). nil removes the hook. Fault
// injection perturbs scheduling and aborts queries; it never changes what a
// surviving query returns, so the hook is excluded from result-cache keys.
func WithFaultHook(fn func(site string)) Option {
	return func(cfg *config) {
		if fn == nil {
			cfg.fault = nil
			return
		}
		cfg.fault = &faultHook{fn: fn}
	}
}

// faultHook boxes the WithFaultHook callback behind a pointer so config
// stays comparable (it is a map key in the result cache and the batch
// planner's group keys); the hook itself is identity-compared, and
// cacheParams strips it anyway.
type faultHook struct{ fn func(site string) }

// WithObserver attaches an Observer: the engine's query, cache, kernel and
// workspace-pool counters stream into its registry. Without one (the
// default) every hook is a nil check — the serving fast paths stay
// allocation-free either way, and observation never changes what a query
// returns. Engines derived through With inherit the observer; typically it
// is set once at construction and read back through Engine.Metrics.
func WithObserver(o *Observer) Option { return func(cfg *config) { cfg.observer = o } }

func buildConfig(opts []Option) config {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

func (cfg config) coreOptions() core.Options {
	return core.Options{C: cfg.c, K: cfg.k, Eps: cfg.eps, Sieve: cfg.sieve, Mine: cfg.miner.internal()}
}

// iterations resolves the iteration count for measures whose options structs
// have no Eps field; they follow the geometric convergence bound Cᵏ⁺¹ <= ε.
func (cfg config) iterations() int {
	if cfg.eps > 0 {
		return cfg.coreOptions().IterationsGeometric()
	}
	return cfg.k
}

func (cfg config) simrankOptions() simrank.Options {
	return simrank.Options{C: cfg.c, K: cfg.iterations(), Sieve: cfg.sieve}
}

func (cfg config) prankOptions() prank.Options {
	return prank.Options{C: cfg.c, K: cfg.iterations(), Lambda: cfg.lambda, Sieve: cfg.sieve}
}

func (cfg config) rwrOptions() rwr.Options {
	return rwr.Options{C: cfg.c, K: cfg.iterations(), Sieve: cfg.sieve}
}

func (cfg config) sparseOptions() sparsesim.Options {
	return sparsesim.Options{C: cfg.c, K: cfg.iterations(), Delta: cfg.delta}
}
