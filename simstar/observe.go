package simstar

import (
	"context"
	"errors"
	"time"

	"repro/internal/obs"
)

// This file is the engine's observability surface: the Observer that
// aggregates query/cache/kernel counters into an obs.Registry, and the
// Trace* query variants that return a structured per-stage record of one
// query. The hooks threading through the serving paths are nilable and
// explicitly guarded, so an engine without an observer pays one branch per
// hook and the //simstar:noalloc paths stay allocation-free with
// observation on or off (asserted in observe_test.go, enforced by simlint's
// obsnoop analyzer).

// Observer aggregates an engine's serving metrics into an obs.Registry:
// queries by kind, result-cache hits and misses, kernel sweep counts and
// wall time, certified sieve spend, and workspace-pool behaviour. One
// Observer may be shared by several engines (their counts merge) and by the
// serving layer on top (cmd/simserve registers its HTTP metrics in the same
// registry); all updates are lock-free and safe under full concurrency.
type Observer struct {
	reg *obs.Registry

	qSingle *obs.Counter
	qStream *obs.Counter
	qBatch  *obs.Counter

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	sweeps     *obs.Counter
	parSweeps  *obs.Counter
	sieveSpend *obs.FloatCounter
	poolMisses *obs.Counter

	deadlineExceeded *obs.Counter

	kernelSeconds *obs.Histogram
	cancelLatency *obs.Histogram
}

// NewObserver builds an Observer registering its metric families in reg
// (nil means a fresh private registry, read back through Registry). The
// families:
//
//	simstar_queries_total{kind}            counter   queries served, by kind
//	simstar_cache_hits_total               counter   result-cache hits
//	simstar_cache_misses_total             counter   result-cache misses
//	simstar_kernel_sweeps_total            counter   kernel matrix sweeps
//	simstar_parallel_sweeps_total          counter   sweeps fanned out across workers
//	simstar_sieve_spend_total              counter   certified sieve error mass
//	simstar_workspace_pool_misses_total    counter   pool-miss workspace builds
//	simstar_deadline_exceeded_total        counter   queries aborted by their deadline
//	simstar_kernel_seconds                 histogram kernel wall time per query
//	simstar_cancel_latency_seconds         histogram overrun past an expired deadline
//
// Registration is idempotent per (name, labels), so two observers over one
// registry share the underlying counters.
func NewObserver(reg *obs.Registry) *Observer {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &Observer{reg: reg}
	const qName = "simstar_queries_total"
	const qHelp = "Queries served, by kind: single_source covers SingleSource/TopK and their variants, stream covers TopKStream, batch counts every query inside MultiSource/BatchTopK."
	o.qSingle = reg.Counter(qName, qHelp, obs.Label{Name: "kind", Value: "single_source"})
	o.qStream = reg.Counter(qName, qHelp, obs.Label{Name: "kind", Value: "stream"})
	o.qBatch = reg.Counter(qName, qHelp, obs.Label{Name: "kind", Value: "batch"})
	o.cacheHits = reg.Counter("simstar_cache_hits_total",
		"Single-source result-cache hits, exact-donor hits included.")
	o.cacheMisses = reg.Counter("simstar_cache_misses_total",
		"Single-source result-cache misses.")
	o.sweeps = reg.Counter("simstar_kernel_sweeps_total",
		"Matrix-sweep iterations the single-source kernels ran.")
	o.parSweeps = reg.Counter("simstar_parallel_sweeps_total",
		"Kernel sweeps row-range partitioned across the WithParallelSweeps worker pool.")
	o.sieveSpend = reg.FloatCounter("simstar_sieve_spend_total",
		"Certified error mass the approximate kernels' sieves dropped.")
	o.poolMisses = reg.Counter("simstar_workspace_pool_misses_total",
		"Kernel workspaces allocated because the per-epoch pool had none to reuse.")
	o.deadlineExceeded = reg.Counter("simstar_deadline_exceeded_total",
		"Queries aborted because their deadline budget expired mid-run (WithDeadline or a caller deadline).")
	o.kernelSeconds = reg.Histogram("simstar_kernel_seconds",
		"Kernel wall time per uncached single-source query, in seconds.",
		obs.LatencyBuckets)
	o.cancelLatency = reg.Histogram("simstar_cancel_latency_seconds",
		"How far past its expired deadline a query kept running before the kernels' amortised cancellation polls aborted it, in seconds.",
		obs.CancelLatencyBuckets)
	return o
}

// Registry returns the registry the observer's metrics live in — the thing
// to render with WritePrometheus or merge server-level metrics into.
func (o *Observer) Registry() *obs.Registry { return o.reg }

// recordKernel folds one uncached query's kernel-reported detail and wall
// time into the aggregates. kt may be nil (a caller observing only
// latency); callers guard o themselves — the method assumes a non-nil
// receiver so the hot path pays exactly one branch when observation is off.
func (o *Observer) recordKernel(kt *obs.KernelTrace, d time.Duration) {
	if kt != nil {
		if kt.Sweeps > 0 {
			o.sweeps.Add(uint64(kt.Sweeps))
		}
		if kt.ParSweeps > 0 {
			o.parSweeps.Add(uint64(kt.ParSweeps))
		}
		if kt.SieveSpend > 0 {
			o.sieveSpend.Add(kt.SieveSpend)
		}
	}
	o.kernelSeconds.Observe(d.Seconds())
}

// observeCancel folds a query's deadline outcome into the aggregates: when
// err is the context's DeadlineExceeded, the abort is counted and the
// overrun — how far past the deadline the query actually stopped, the
// latency the amortised kernel polls bound — lands in the cancel-latency
// histogram. Nil-safe on both the observer and the error, so serving paths
// call it unconditionally on their error returns.
func (o *Observer) observeCancel(ctx context.Context, err error) {
	if o == nil || !errors.Is(err, context.DeadlineExceeded) {
		return
	}
	o.deadlineExceeded.Inc()
	if dl, ok := ctx.Deadline(); ok {
		o.cancelLatency.Observe(time.Since(dl).Seconds())
	}
}

// Metrics returns the engine's observer: the one WithObserver configured,
// or nil when the engine runs unobserved.
func (e *Engine) Metrics() *Observer { return e.cfg.observer }

// TraceSingleSource is SingleSourceCertified plus a structured trace of the
// query's path through the engine: the plan/cache/kernel stages with wall
// times, whether the result cache answered, the certified MaxError, and —
// when a kernel ran — its sweep, frontier and sieve detail. The trace is
// freshly allocated per call; tracing changes the cost, never the scores.
func (e *Engine) TraceSingleSource(ctx context.Context, measureName string, q int) ([]float64, *obs.Trace, error) {
	st := e.load()
	tr := &obs.Trace{}
	start := time.Now()
	scores, _, _, err := e.singleSourceObs(ctx, st, measureName, q, true, tr)
	if err != nil {
		return nil, nil, err
	}
	tr.Finish(start)
	return scores, tr, nil
}

// TraceTopK is TopK plus the same structured trace TraceSingleSource
// returns, extended with a "select" span covering the ranking step and the
// trace's K field.
func (e *Engine) TraceTopK(ctx context.Context, measureName string, q, k int, exclude ...int) ([]Ranked, *obs.Trace, error) {
	st := e.load()
	tr := &obs.Trace{}
	start := time.Now()
	scores, _, _, err := e.singleSourceObs(ctx, st, measureName, q, true, tr)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	top := TopK(scores, k, append([]int{q}, exclude...)...)
	tr.AddSpan("select", time.Since(t0))
	tr.K = k
	tr.Finish(start)
	return top, tr, nil
}
