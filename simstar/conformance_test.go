package simstar_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/simstar"
)

// toyGraph builds a small labelled citation graph with enough structure to
// exercise every measure: co-citations, chains, a sink and a source.
func toyGraph(t testing.TB) *simstar.Graph {
	t.Helper()
	b := simstar.NewGraphBuilder()
	for _, e := range [][2]string{
		{"survey", "classicA"}, {"survey", "classicB"},
		{"followup1", "survey"}, {"followup2", "survey"},
		{"review", "followup1"}, {"review", "followup2"},
		{"preprint", "followup1"}, {"preprint", "classicA"},
		{"classicB", "classicA"},
	} {
		b.AddEdgeLabeled(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Every registered measure must satisfy the interface contract:
// SingleSource(q) equals row q of AllPairs on the same graph and options.
func TestMeasureConformanceSingleSourceIsAllPairsRow(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	for _, name := range simstar.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := simstar.Lookup(name, simstar.WithC(0.6), simstar.WithK(4))
			if err != nil {
				t.Fatal(err)
			}
			if m.Name() != name {
				t.Fatalf("Name() = %q, want %q", m.Name(), name)
			}
			all, err := m.AllPairs(ctx, g)
			if err != nil {
				t.Fatal(err)
			}
			if all.N() != g.N() {
				t.Fatalf("AllPairs N = %d, want %d", all.N(), g.N())
			}
			for q := 0; q < g.N(); q++ {
				row, err := m.SingleSource(ctx, g, q)
				if err != nil {
					t.Fatal(err)
				}
				if len(row) != g.N() {
					t.Fatalf("q=%d: row length %d, want %d", q, len(row), g.N())
				}
				for j, v := range row {
					if want := all.At(q, j); math.Abs(v-want) > 1e-10 {
						t.Fatalf("q=%d j=%d: SingleSource %g != AllPairs %g", q, j, v, want)
					}
				}
			}
		})
	}
}

// Every registered measure must honour context cancellation, reporting
// ctx.Err() rather than a result.
func TestMeasureConformanceCancellation(t *testing.T) {
	g := toyGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range simstar.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := simstar.Lookup(name, simstar.WithK(50))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.AllPairs(ctx, g); !errors.Is(err, context.Canceled) {
				t.Fatalf("AllPairs error = %v, want context.Canceled", err)
			}
			if _, err := m.SingleSource(ctx, g, 0); !errors.Is(err, context.Canceled) {
				t.Fatalf("SingleSource error = %v, want context.Canceled", err)
			}
		})
	}
}

// Cancellation must also interrupt a run already in flight, between
// iterations, not only reject at the entry check.
func TestCancellationMidIteration(t *testing.T) {
	g := toyGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	m, err := simstar.Lookup(simstar.MeasureGeometric, simstar.WithK(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.AllPairs(ctx, g)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run error = %v, want context.Canceled", err)
	}
}

func TestSingleSourceRejectsOutOfRangeQuery(t *testing.T) {
	g := toyGraph(t)
	m, err := simstar.Lookup(simstar.MeasureGeometric)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{-1, g.N()} {
		if _, err := m.SingleSource(context.Background(), g, q); err == nil {
			t.Fatalf("q=%d: want error, got nil", q)
		}
	}
}

func TestLookupUnknownMeasure(t *testing.T) {
	if _, err := simstar.Lookup("no-such-measure"); err == nil {
		t.Fatal("want error for unknown measure")
	}
}

func TestLookupAliases(t *testing.T) {
	for alias, want := range map[string]string{
		"iter-gsr*": simstar.MeasureGeometric,
		"memo-gsr*": simstar.MeasureGeometricMemo,
		"esr*":      simstar.MeasureExponential,
		"memo-esr*": simstar.MeasureExponentialMemo,
		"psum-sr":   simstar.MeasureSimRank,
		"PPR":       simstar.MeasureRWR, // case-insensitive
	} {
		m, err := simstar.Lookup(alias)
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		if m.Name() != want {
			t.Fatalf("alias %q resolved to %q, want %q", alias, m.Name(), want)
		}
	}
}

// All six measure families the paper studies must be registered.
func TestAllFamiliesRegistered(t *testing.T) {
	for _, name := range []string{
		simstar.MeasureGeometric, simstar.MeasureGeometricMemo,
		simstar.MeasureExponential, simstar.MeasureExponentialMemo,
		simstar.MeasureSimRank, simstar.MeasurePRank,
		simstar.MeasureRWR, simstar.MeasureSparse,
	} {
		if _, err := simstar.Lookup(name); err != nil {
			t.Fatalf("measure %q not registered: %v", name, err)
		}
	}
}

// Custom registration: applications can plug their own measures into the
// registry and select them by name like any built-in.
func TestRegisterCustomMeasure(t *testing.T) {
	simstar.Register("test-constant", func(opts ...simstar.Option) simstar.Measure {
		return constantMeasure{}
	})
	m, err := simstar.Lookup("test-constant")
	if err != nil {
		t.Fatal(err)
	}
	row, err := m.SingleSource(context.Background(), toyGraph(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 1 {
		t.Fatalf("custom measure row[0] = %g, want 1", row[0])
	}
}

// constantMeasure is a minimal conformant third-party measure: it honours
// cancellation and its SingleSource equals the AllPairs rows.
type constantMeasure struct{}

func (constantMeasure) Name() string { return "test-constant" }

func (constantMeasure) AllPairs(ctx context.Context, g *simstar.Graph) (*simstar.Scores, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows := make([][]float64, g.N())
	for i := range rows {
		rows[i] = make([]float64, g.N())
		for j := range rows[i] {
			rows[i][j] = 1
		}
	}
	return simstar.ScoresFromRows(rows), nil
}

func (constantMeasure) SingleSource(ctx context.Context, g *simstar.Graph, q int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	row := make([]float64, g.N())
	for i := range row {
		row[i] = 1
	}
	return row, nil
}
